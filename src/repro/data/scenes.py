"""Scene graphs: the ground truth behind every synthetic image and text.

A :class:`Scene` is a small set of :class:`SceneObject` entries, each with a
shape, color, size and grid position.  The image renderer rasterises scenes,
and the language generators produce captions / QA / reasoning text from them,
so the correct continuation of every multimodal prompt is a deterministic
function of the scene — exactly the property needed to study how much a
draft model benefits from visual context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SHAPES",
    "COLORS",
    "SIZES",
    "GRID_POSITIONS",
    "SceneObject",
    "Scene",
    "sample_scene",
]

SHAPES: Tuple[str, ...] = ("circle", "square", "triangle", "star", "diamond", "cross")

#: Color name -> RGB in [0, 1].
COLORS = {
    "red": (0.90, 0.15, 0.15),
    "green": (0.15, 0.80, 0.20),
    "blue": (0.15, 0.30, 0.90),
    "yellow": (0.95, 0.90, 0.15),
    "purple": (0.60, 0.20, 0.80),
    "orange": (0.95, 0.55, 0.10),
    "cyan": (0.15, 0.85, 0.85),
    "white": (0.95, 0.95, 0.95),
}

SIZES: Tuple[str, ...] = ("small", "large")

#: 3x3 grid of named positions, row-major: (name, (row, col)).
GRID_POSITIONS: Tuple[Tuple[str, Tuple[int, int]], ...] = (
    ("top left", (0, 0)),
    ("top", (0, 1)),
    ("top right", (0, 2)),
    ("left", (1, 0)),
    ("center", (1, 1)),
    ("right", (1, 2)),
    ("bottom left", (2, 0)),
    ("bottom", (2, 1)),
    ("bottom right", (2, 2)),
)

_POSITION_NAMES = tuple(name for name, _ in GRID_POSITIONS)
_POSITION_CELLS = {name: cell for name, cell in GRID_POSITIONS}


@dataclass(frozen=True)
class SceneObject:
    """One object in a scene."""

    shape: str
    color: str
    size: str
    position: str

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown shape {self.shape!r}")
        if self.color not in COLORS:
            raise ValueError(f"unknown color {self.color!r}")
        if self.size not in SIZES:
            raise ValueError(f"unknown size {self.size!r}")
        if self.position not in _POSITION_CELLS:
            raise ValueError(f"unknown position {self.position!r}")

    @property
    def cell(self) -> Tuple[int, int]:
        """(row, col) in the 3x3 grid."""
        return _POSITION_CELLS[self.position]

    def phrase(self) -> str:
        """Noun phrase such as ``a large red circle``."""
        return f"a {self.size} {self.color} {self.shape}"


@dataclass(frozen=True)
class Scene:
    """An ordered collection of objects occupying distinct grid cells."""

    objects: Tuple[SceneObject, ...]

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("a scene needs at least one object")
        cells = [obj.cell for obj in self.objects]
        if len(set(cells)) != len(cells):
            raise ValueError("scene objects must occupy distinct cells")

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)

    # ------------------------------------------------------------------
    # Queries used by the language generators
    # ------------------------------------------------------------------
    def by_shape(self, shape: str) -> List[SceneObject]:
        return [obj for obj in self.objects if obj.shape == shape]

    def by_color(self, color: str) -> List[SceneObject]:
        return [obj for obj in self.objects if obj.color == color]

    def unique_shapes(self) -> List[str]:
        """Shapes that occur exactly once (unambiguous to refer to)."""
        counts: dict = {}
        for obj in self.objects:
            counts[obj.shape] = counts.get(obj.shape, 0) + 1
        return [obj.shape for obj in self.objects if counts[obj.shape] == 1]

    def left_of(self, a: SceneObject, b: SceneObject) -> bool:
        return a.cell[1] < b.cell[1]

    def above(self, a: SceneObject, b: SceneObject) -> bool:
        return a.cell[0] < b.cell[0]


def sample_scene(
    rng: np.random.Generator,
    min_objects: int = 1,
    max_objects: int = 3,
    shapes: Optional[Sequence[str]] = None,
) -> Scene:
    """Draw a random scene with distinct shapes in distinct cells.

    Shapes are sampled without replacement so references like "the circle"
    are always unambiguous, matching the templated question generators.
    """
    if not 1 <= min_objects <= max_objects <= len(SHAPES):
        raise ValueError(f"invalid object count range [{min_objects}, {max_objects}]")
    n = int(rng.integers(min_objects, max_objects + 1))
    pool = list(shapes) if shapes is not None else list(SHAPES)
    chosen_shapes = rng.choice(pool, size=n, replace=False)
    positions = rng.choice(len(_POSITION_NAMES), size=n, replace=False)
    colors = list(COLORS)
    # Raster order (top-left to bottom-right): every enumeration the
    # language generators emit becomes a deterministic function of the
    # rendered image, which the target model needs to be exactly learnable.
    objects = sorted(
        (
            SceneObject(
                shape=str(shape),
                color=colors[int(rng.integers(len(colors)))],
                size=SIZES[int(rng.integers(len(SIZES)))],
                position=_POSITION_NAMES[int(pos)],
            )
            for shape, pos in zip(chosen_shapes, positions)
        ),
        key=lambda obj: obj.cell,
    )
    return Scene(objects=tuple(objects))
