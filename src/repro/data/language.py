"""Templated language generation from scene graphs.

Each generator maps a :class:`~repro.data.scenes.Scene` (plus an RNG for
template choice) to a ``(prompt, response)`` pair.  The response is a
deterministic function of the scene given the chosen template, which makes
greedy decoding by a well-trained target model reproducible and lets tests
assert exact outputs.

Task families (mirroring the paper's three evaluation datasets):

* **caption** - single-sentence image captions (COCO stand-in),
* **conversation / detail / reasoning** - the LLaVA-Bench-in-the-wild mix,
* **scienceqa** - multiple-choice questions answered with a short
  chain-of-thought followed by ``the answer is <letter>``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .scenes import Scene, SceneObject

__all__ = [
    "NUMBER_WORDS",
    "caption_sample",
    "conversation_sample",
    "detail_sample",
    "reasoning_sample",
    "scienceqa_sample",
]

NUMBER_WORDS = ("zero", "one", "two", "three", "four", "five", "six")


def _join_phrases(phrases: List[str]) -> str:
    if len(phrases) == 1:
        return phrases[0]
    return " and ".join([", ".join(phrases[:-1]), phrases[-1]]) if len(phrases) > 2 else " and ".join(phrases)


def _object_clause(obj: SceneObject) -> str:
    return f"{obj.phrase()} in the {obj.position}"


def caption_sample(scene: Scene, rng: np.random.Generator) -> Tuple[str, str]:
    """COCO-style captioning prompt/response."""
    prompts = (
        "describe the image briefly.",
        "write a short caption for the image.",
        "what is shown in the image?",
    )
    prompt = prompts[int(rng.integers(len(prompts)))]
    clauses = [_object_clause(obj) for obj in scene]
    response = f"the image shows {_join_phrases(clauses)}."
    return prompt, response


def detail_sample(scene: Scene, rng: np.random.Generator) -> Tuple[str, str]:
    """LLaVA-Bench 'detailed description' prompt/response."""
    prompts = (
        "describe the image in detail.",
        "give a detailed description of every object.",
    )
    prompt = prompts[int(rng.integers(len(prompts)))]
    count = NUMBER_WORDS[len(scene)]
    noun = "object" if len(scene) == 1 else "objects"
    sentences = [f"the image contains {count} {noun}."]
    for obj in scene:
        sentences.append(f"there is {obj.phrase()} in the {obj.position}.")
    return prompt, " ".join(sentences)


def conversation_sample(scene: Scene, rng: np.random.Generator) -> Tuple[str, str]:
    """LLaVA-Bench 'conversation' single-turn QA about one attribute."""
    unique = scene.unique_shapes()
    if not unique:
        return caption_sample(scene, rng)
    shape = unique[int(rng.integers(len(unique)))]
    obj = scene.by_shape(shape)[0]
    kind = int(rng.integers(3))
    if kind == 0:
        return (
            f"what color is the {shape}?",
            f"the {shape} is {obj.color}.",
        )
    if kind == 1:
        return (
            f"where is the {shape}?",
            f"the {shape} is in the {obj.position}.",
        )
    return (
        f"how big is the {shape}?",
        f"the {shape} is {obj.size}.",
    )


def reasoning_sample(scene: Scene, rng: np.random.Generator) -> Tuple[str, str]:
    """LLaVA-Bench 'complex reasoning': counting or spatial relations."""
    kind = int(rng.integers(2))
    if kind == 0 or len(scene) < 2:
        count = NUMBER_WORDS[len(scene)]
        noun = "object" if len(scene) == 1 else "objects"
        names = _join_phrases([f"the {obj.shape}" for obj in scene])
        return (
            "how many objects are in the image?",
            f"i can see {names}. there are {count} {noun} in the image.",
        )
    unique = scene.unique_shapes()
    if len(unique) < 2:
        return reasoning_sample(Scene(scene.objects[:1]), rng)
    i, j = rng.choice(len(unique), size=2, replace=False)
    a = scene.by_shape(unique[int(i)])[0]
    b = scene.by_shape(unique[int(j)])[0]
    if a.cell[1] != b.cell[1]:
        relation = "left of" if scene.left_of(a, b) else "right of"
        answer = "yes" if scene.left_of(a, b) else "no"
        question = f"is the {a.shape} to the left of the {b.shape}?"
        explain = f"the {a.shape} is in the {a.position} and the {b.shape} is in the {b.position}."
        return question, f"{explain} so the answer is {answer}."
    relation = "above" if scene.above(a, b) else "below"
    answer = "yes" if scene.above(a, b) else "no"
    question = f"is the {a.shape} above the {b.shape}?"
    explain = f"the {a.shape} is in the {a.position} and the {b.shape} is in the {b.position}."
    return question, f"{explain} so the answer is {answer}."


def scienceqa_sample(scene: Scene, rng: np.random.Generator) -> Tuple[str, str]:
    """ScienceQA-style multiple choice with a chain-of-thought answer."""
    unique = scene.unique_shapes()
    kind = int(rng.integers(2))
    if kind == 0 and len(unique) >= 2:
        # Which object is <color>?
        i, j = rng.choice(len(unique), size=2, replace=False)
        a = scene.by_shape(unique[int(i)])[0]
        b = scene.by_shape(unique[int(j)])[0]
        if a.color == b.color:
            kind = 1
        else:
            question = (
                f"question: which object is {a.color}? "
                f"choices: a. the {a.shape} b. the {b.shape}"
            )
            cot = (
                f"the {a.shape} is {a.color}. the {b.shape} is {b.color}. "
                f"the answer is a."
            )
            return question, cot
    # Count question with lettered choices.
    n = len(scene)
    wrong = n + 1 if n < len(NUMBER_WORDS) - 1 else n - 1
    order = int(rng.integers(2))
    choices = [NUMBER_WORDS[n], NUMBER_WORDS[wrong]]
    if order == 1:
        choices = choices[::-1]
    correct_letter = "a" if choices[0] == NUMBER_WORDS[n] else "b"
    question = (
        "question: how many objects are in the image? "
        f"choices: a. {choices[0]} b. {choices[1]}"
    )
    names = _join_phrases([f"the {obj.shape}" for obj in scene])
    cot = (
        f"i can see {names}. that makes {NUMBER_WORDS[n]} "
        f"{'object' if n == 1 else 'objects'}. the answer is {correct_letter}."
    )
    return question, cot
