"""Batch collation for training: multimodal batches and packed LM streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from ..tokenizer import WordTokenizer
from .tasks import MultimodalSample

__all__ = ["IGNORE_INDEX", "MultimodalBatch", "collate_multimodal", "pack_documents", "iter_batches"]

#: Label value that contributes zero loss (prompt and padding positions).
IGNORE_INDEX = -100


@dataclass(frozen=True)
class MultimodalBatch:
    """A right-padded batch of image + text training sequences.

    ``text_ids[b]`` is ``[bos, prompt..., response..., eos, pad...]``;
    ``labels[b, t]`` is the id that the model should predict *at* text
    position t (i.e. already shifted by one), with :data:`IGNORE_INDEX` on
    prompt and pad positions so loss is measured on the response only.
    """

    images: np.ndarray          # (B, H, W, 3)
    text_ids: np.ndarray        # (B, T) int64
    labels: np.ndarray          # (B, T) int64, IGNORE_INDEX outside response
    prompt_lengths: np.ndarray  # (B,) length of [bos + prompt] per sample

    @property
    def batch_size(self) -> int:
        return self.text_ids.shape[0]

    @property
    def seq_len(self) -> int:
        return self.text_ids.shape[1]


def collate_multimodal(
    samples: Sequence[MultimodalSample],
    tokenizer: WordTokenizer,
    loss_on_prompt: bool = False,
) -> MultimodalBatch:
    """Tokenize and right-pad a list of samples into one batch."""
    if not samples:
        raise ValueError("cannot collate an empty batch")
    pad = tokenizer.vocab.pad_id
    rows: List[np.ndarray] = []
    prompt_lens: List[int] = []
    for s in samples:
        prompt_ids = [tokenizer.vocab.bos_id] + tokenizer.encode(s.prompt)
        response_ids = tokenizer.encode(s.response) + [tokenizer.vocab.eos_id]
        rows.append(np.asarray(prompt_ids + response_ids, dtype=np.int64))
        prompt_lens.append(len(prompt_ids))

    max_len = max(len(r) for r in rows)
    batch = len(rows)
    text_ids = np.full((batch, max_len), pad, dtype=np.int64)
    labels = np.full((batch, max_len), IGNORE_INDEX, dtype=np.int64)
    for b, (row, p_len) in enumerate(zip(rows, prompt_lens)):
        text_ids[b, : len(row)] = row
        # Position t predicts token t+1; response starts at index p_len.
        start = 0 if loss_on_prompt else p_len - 1
        for t in range(start, len(row) - 1):
            labels[b, t] = row[t + 1]

    images = np.stack([s.image for s in samples]).astype(np.float32)
    return MultimodalBatch(
        images=images,
        text_ids=text_ids,
        labels=labels,
        prompt_lengths=np.asarray(prompt_lens, dtype=np.int64),
    )


def pack_documents(
    documents: Sequence[str],
    tokenizer: WordTokenizer,
    seq_len: int,
) -> np.ndarray:
    """Pack documents into ``(N, seq_len + 1)`` rows for causal LM training.

    Each document is encoded as ``bos ... eos`` and the stream is chunked;
    row ``[:, :-1]`` is the input and ``[:, 1:]`` the target.
    """
    if seq_len < 2:
        raise ValueError(f"seq_len must be >= 2, got {seq_len}")
    stream: List[int] = []
    for doc in documents:
        stream.extend(tokenizer.encode(doc, add_bos=True, add_eos=True))
    n_rows = len(stream) // (seq_len + 1)
    if n_rows == 0:
        raise ValueError("corpus too small for requested seq_len")
    trimmed = np.asarray(stream[: n_rows * (seq_len + 1)], dtype=np.int64)
    return trimmed.reshape(n_rows, seq_len + 1)


def iter_batches(
    items: Sequence,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[List]:
    """Yield lists of items of size <= batch_size, optionally shuffled."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(len(items))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(items), batch_size):
        yield [items[i] for i in order[start : start + batch_size]]
