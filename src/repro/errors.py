"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TokenizerError",
    "ShapeError",
    "DecodingError",
    "TrainingError",
    "CheckpointError",
    "GuardViolation",
    "ServingError",
    "AdmissionError",
    "ChaosError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration."""


class TokenizerError(ReproError):
    """Tokenizer vocabulary or encoding failure."""


class ShapeError(ReproError):
    """Tensor shape mismatch detected at an API boundary."""


class DecodingError(ReproError):
    """Invalid decoding request or internal decoding inconsistency."""


class TrainingError(ReproError):
    """Training loop failure (diverged loss, empty dataset, ...)."""


class CheckpointError(ReproError):
    """Checkpoint could not be read or failed integrity verification.

    Wraps the third-party exceptions checkpoint I/O can surface
    (``zipfile.BadZipFile``, ``OSError``, ``KeyError`` for missing tensors,
    checksum mismatches) so callers only ever need to catch one type; the
    message always names the offending path.
    """

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        self.path = path


class GuardViolation(ReproError):
    """A runtime invariant check failed (non-finite values, cache corruption).

    Raised by :mod:`repro.robustness.guards`; the decode engine treats it as
    a recoverable draft fault and degrades to target-only decoding.
    """


class ServingError(ReproError):
    """Serving-layer failure (scheduler misuse, invalid request)."""


class AdmissionError(ServingError):
    """A request was refused at admission (queue full or incompatible).

    This is the backpressure signal of :mod:`repro.serving`: online callers
    should retry later or shed load; the offline ``serve_requests`` facade
    converts it into a ``rejected`` result instead of raising.
    """


class ChaosError(ReproError):
    """A chaos-harness invariant was violated after a fault storm.

    Raised by :func:`repro.robustness.chaos.assert_chaos`; the message
    lists every violated invariant so a failing storm is diagnosable from
    the exception alone.
    """
