"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TokenizerError",
    "ShapeError",
    "DecodingError",
    "TrainingError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration."""


class TokenizerError(ReproError):
    """Tokenizer vocabulary or encoding failure."""


class ShapeError(ReproError):
    """Tensor shape mismatch detected at an API boundary."""


class DecodingError(ReproError):
    """Invalid decoding request or internal decoding inconsistency."""


class TrainingError(ReproError):
    """Training loop failure (diverged loss, empty dataset, ...)."""
