"""Model zoo: builds and caches every trained artifact the experiments use.

The paper's experiment matrix needs, per target size:

* the target MLLM itself (``sim-7b`` / ``sim-13b``),
* four independent-draft baselines (FT/DT-LLaMA, FT/DT-LLaVA) sharing a
  pretrained 112M-sim language backbone,
* the AASD speculating module, plus its two ablation variants
  (no KV projector — Table 2; no target KV — Figure 3).

Training tiny numpy models still takes minutes, so every artifact is
cached on disk under a profile-specific directory and rebuilt only when
missing.  Two profiles exist: ``full`` (benchmark quality) and ``smoke``
(fast budgets for integration tests).
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from .core.draft_head import AASDDraftHead, DraftHeadConfig
from .data.corpus import build_reference_texts, text_only_corpus
from .data.tasks import DATASET_NAMES, MultimodalSample, TaskDataset, make_dataset
from .errors import CheckpointError, ConfigError, TokenizerError
from .models.config import LlavaConfig, get_config
from .models.llama import MiniLlama
from .models.llava import MiniLlava
from .nn.serialization import load_state_dict, save_state_dict, verify_checkpoint
from .obs.logsetup import get_logger
from .tokenizer import WordTokenizer
from .training.distill import distill_text_draft, generate_distillation_data
from .training.draft_training import DraftTrainConfig, train_draft_head
from .training.finetune import finetune_multimodal_staged, finetune_text_draft
from .training.pretrain import pretrain_lm
from .training.trainer import TrainConfig
from .utils.rng import derive

logger = get_logger(__name__)

__all__ = ["ZooProfile", "ModelZoo", "PROFILE_FULL", "PROFILE_SMOKE", "default_cache_dir"]

TARGET_NAMES = ("sim-7b", "sim-13b")


@dataclass(frozen=True)
class ZooProfile:
    """Training budgets for one quality tier.

    Targets follow the LLaVA recipe: language pretraining of the backbone,
    then feature alignment (vision + connector only), then joint visual
    instruction tuning — without the alignment stage the language prior
    wins and the model learns to ignore the image.
    """

    name: str
    pretrain_steps: int        # text-only LM pretraining (backbones)
    target_align_steps: int    # stage 1: vision + connector only
    target_joint_steps: int    # stage 2: everything
    finetune_steps: int        # FT/DT text drafts
    llava_align_steps: int     # tiny LLaVA draft, stage 1
    llava_joint_steps: int     # tiny LLaVA draft, stage 2
    aasd_steps: int            # speculating-module training
    batch_size: int = 8
    train_pool_size: int = 1200
    distill_pool_size: int = 400   # samples the teacher labels for DT drafts
    seed: int = 0

    def tag(self) -> str:
        return f"{self.name}-seed{self.seed}"


PROFILE_FULL = ZooProfile(
    name="full",
    pretrain_steps=250,
    target_align_steps=800,
    target_joint_steps=900,
    finetune_steps=500,
    llava_align_steps=300,
    llava_joint_steps=400,
    aasd_steps=400,
    distill_pool_size=400,
)

PROFILE_SMOKE = ZooProfile(
    name="smoke",
    pretrain_steps=40,
    target_align_steps=50,
    target_joint_steps=60,
    finetune_steps=50,
    llava_align_steps=25,
    llava_joint_steps=30,
    aasd_steps=80,
    train_pool_size=120,
)

_PROFILES = {p.name: p for p in (PROFILE_FULL, PROFILE_SMOKE)}


def default_cache_dir() -> Path:
    """Zoo cache location; override with the REPRO_CACHE_DIR env var."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[2] / ".cache" / "zoo"


class ModelZoo:
    """Lazy, disk-cached factory for all trained models."""

    def __init__(
        self,
        profile: ZooProfile = PROFILE_FULL,
        cache_dir: Optional[Path] = None,
        verbose: bool = True,
        load_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if isinstance(profile, str):
            if profile not in _PROFILES:
                raise ConfigError(f"unknown zoo profile {profile!r}")
            profile = _PROFILES[profile]
        self.profile = profile
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir() / profile.tag()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.verbose = verbose
        self.load_retries = max(1, load_retries)
        self.retry_backoff_s = retry_backoff_s
        self._tokenizer: Optional[WordTokenizer] = None
        self._memo: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        logger.log(
            logging.INFO if self.verbose else logging.DEBUG,
            "[zoo:%s] %s",
            self.profile.name,
            message,
            extra={"profile": self.profile.name},
        )

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def _quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt artifact aside so the next build starts clean.

        The original file is preserved as ``<name>.corrupt`` for post-mortem
        inspection rather than deleted; an existing quarantine file for the
        same artifact is overwritten (we only keep the latest casualty).
        """
        quarantine = path.with_suffix(".corrupt")
        self._log(f"quarantining corrupt artifact {path.name} -> {quarantine.name}: {reason}")
        try:
            os.replace(path, quarantine)
        except OSError:
            # Fall back to deletion: a stale corrupt file must not be loaded.
            try:
                path.unlink()
            except OSError:
                pass
        return quarantine

    def _load_into(self, key: str, model) -> bool:
        """Load a cached artifact into ``model``; never raises on corruption.

        Transient read failures are retried with linear backoff; a corrupt,
        truncated, or geometry-mismatched artifact is quarantined and False
        is returned so the caller retrains it from scratch.
        """
        path = self._path(key)
        if not path.exists():
            return False
        last_error: Optional[Exception] = None
        for attempt in range(self.load_retries):
            if attempt:
                time.sleep(self.retry_backoff_s * attempt)
            try:
                state, _ = load_state_dict(path)
                model.load_state_dict(state)
                return True
            except CheckpointError as exc:
                last_error = exc
            except (KeyError, ValueError) as exc:
                # Stale artifact whose tensors no longer match the model.
                last_error = exc
                break
        self._quarantine(path, f"{type(last_error).__name__}: {last_error}")
        return False

    def _save(self, key: str, model, meta: Optional[dict] = None) -> None:
        """Atomically persist an artifact, verifying the written archive.

        The read-back verification plus bounded retry means a successful
        return guarantees the on-disk file round-trips with valid checksums.
        """
        path = self._path(key)
        last_error: Optional[CheckpointError] = None
        for attempt in range(self.load_retries):
            if attempt:
                time.sleep(self.retry_backoff_s * attempt)
            try:
                save_state_dict(path, model.state_dict(), meta=meta)
                load_state_dict(path)  # read-back integrity check
                return
            except CheckpointError as exc:
                last_error = exc
                self._log(f"save of {path.name} failed verification (attempt {attempt + 1}): {exc}")
        raise CheckpointError(
            f"could not persist artifact {path} after {self.load_retries} attempts: {last_error}",
            path=path,
        )

    def verify_cache(self) -> Dict[str, Dict[str, object]]:
        """Integrity report for every cached ``.npz`` artifact.

        Maps artifact file name to the :func:`verify_checkpoint` report;
        never raises, so callers can decide between rebuild and alert.
        """
        return {
            path.name: verify_checkpoint(path)
            for path in sorted(self.cache_dir.glob("*.npz"))
        }

    # ------------------------------------------------------------------
    # Tokenizer and data pools
    # ------------------------------------------------------------------
    def tokenizer(self) -> WordTokenizer:
        if self._tokenizer is None:
            vocab_path = self.cache_dir / "vocab.json"
            if vocab_path.exists():
                try:
                    self._tokenizer = WordTokenizer.load(vocab_path)
                except (TokenizerError, OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
                    self._quarantine(vocab_path, f"{type(exc).__name__}: {exc}")
            if self._tokenizer is None:
                self._tokenizer = WordTokenizer.from_texts(build_reference_texts())
                self._tokenizer.save(vocab_path)
        return self._tokenizer

    def train_pool(self) -> List[MultimodalSample]:
        """Mixed-task training samples (disjoint seed region from eval)."""
        key = "train_pool"
        if key not in self._memo:
            per = self.profile.train_pool_size // len(DATASET_NAMES)
            pool: List[MultimodalSample] = []
            for i, name in enumerate(DATASET_NAMES):
                pool.extend(make_dataset(name, per, seed=1000 + self.profile.seed + i).samples)
            rng = derive(self.profile.seed, "zoo:train-pool")
            rng.shuffle(pool)
            self._memo[key] = pool
        return self._memo[key]

    def eval_dataset(self, name: str, size: int) -> TaskDataset:
        """Evaluation split (seeds disjoint from the train pool)."""
        return make_dataset(name, size, seed=self.profile.seed)

    # ------------------------------------------------------------------
    # Targets
    # ------------------------------------------------------------------
    def target(self, name: str) -> MiniLlava:
        if name not in TARGET_NAMES:
            raise ConfigError(f"unknown target {name!r}; choose from {TARGET_NAMES}")
        memo_key = f"target:{name}"
        if memo_key in self._memo:
            return self._memo[memo_key]

        tok = self.tokenizer()
        config: LlavaConfig = get_config(name, tok.vocab_size)
        model = MiniLlava(config, rng=derive(self.profile.seed, f"init:{name}"))
        key = f"target-{name}"
        if not self._load_into(key, model):
            p = self.profile
            self._log(
                f"training target {name} ({model.num_parameters()} params; "
                f"{p.pretrain_steps}+{p.target_align_steps}+{p.target_joint_steps} steps)"
            )
            pretrain_lm(
                model.llama,
                tok,
                text_only_corpus(seed=p.seed, n_documents=400),
                TrainConfig(
                    steps=p.pretrain_steps,
                    batch_size=16,
                    lr=3e-3,
                    warmup_steps=min(20, p.pretrain_steps // 4),
                    seed=p.seed,
                ),
            )
            finetune_multimodal_staged(
                model,
                tok,
                self.train_pool(),
                TrainConfig(
                    steps=p.target_align_steps,
                    batch_size=p.batch_size,
                    lr=3e-3,
                    warmup_steps=min(30, p.target_align_steps // 4),
                    seed=p.seed,
                ),
                TrainConfig(
                    steps=p.target_joint_steps,
                    batch_size=p.batch_size,
                    lr=1e-3,
                    warmup_steps=min(30, p.target_joint_steps // 4),
                    seed=p.seed,
                ),
            )
            self._save(key, model, meta={"name": name})
        model.eval()
        self._memo[memo_key] = model
        return model

    # ------------------------------------------------------------------
    # Independent draft baselines
    # ------------------------------------------------------------------
    def _pretrained_base(self) -> MiniLlama:
        """Pretrained 112M-sim LM shared by all FT/DT drafts."""
        memo_key = "base:112m"
        if memo_key in self._memo:
            return self._memo[memo_key]
        tok = self.tokenizer()
        model = MiniLlama(get_config("sim-112m", tok.vocab_size),
                          rng=derive(self.profile.seed, "init:112m"))
        key = "pretrained-112m"
        if not self._load_into(key, model):
            self._log(f"pretraining sim-112m base ({self.profile.pretrain_steps} steps)")
            pretrain_lm(
                model,
                tok,
                text_only_corpus(seed=self.profile.seed, n_documents=400),
                TrainConfig(
                    steps=self.profile.pretrain_steps,
                    batch_size=16,
                    lr=3e-3,
                    warmup_steps=min(20, self.profile.pretrain_steps // 4),
                    seed=self.profile.seed,
                ),
            )
            self._save(key, model)
        self._memo[memo_key] = model
        return model

    def _fresh_112m(self) -> MiniLlama:
        """A new 112M-sim model initialised from the pretrained base."""
        tok = self.tokenizer()
        model = MiniLlama(get_config("sim-112m", tok.vocab_size),
                          rng=derive(self.profile.seed, "init:112m"))
        model.load_state_dict(self._pretrained_base().state_dict())
        return model

    def text_draft(self, variant: str, target_name: str) -> MiniLlama:
        """FT-LLaMA or DT-LLaMA (language-only draft)."""
        if variant not in ("ft", "dt"):
            raise ConfigError(f"variant must be 'ft' or 'dt', got {variant!r}")
        key = f"{variant}-llama" + (f"-{target_name}" if variant == "dt" else "")
        if key in self._memo:
            return self._memo[key]
        tok = self.tokenizer()
        model = self._fresh_112m()
        if not self._load_into(key, model):
            cfg = TrainConfig(
                steps=self.profile.finetune_steps,
                batch_size=self.profile.batch_size,
                lr=3e-3,
                warmup_steps=min(20, self.profile.finetune_steps // 4),
                seed=self.profile.seed,
            )
            if variant == "ft":
                self._log(f"finetuning FT-LLaMA ({cfg.steps} steps)")
                finetune_text_draft(model, tok, self.train_pool(), cfg)
            else:
                self._log(f"distilling DT-LLaMA from {target_name} ({cfg.steps} steps)")
                distill_text_draft(
                    model,
                    self.target(target_name),
                    tok,
                    self.train_pool()[: self.profile.distill_pool_size],
                    cfg,
                )
            self._save(key, model)
        model.eval()
        self._memo[key] = model
        return model

    def llava_draft(self, variant: str, target_name: str) -> MiniLlava:
        """FT-LLaVA or DT-LLaVA (tiny multimodal draft)."""
        if variant not in ("ft", "dt"):
            raise ConfigError(f"variant must be 'ft' or 'dt', got {variant!r}")
        key = f"{variant}-llava" + (f"-{target_name}" if variant == "dt" else "")
        if key in self._memo:
            return self._memo[key]
        tok = self.tokenizer()
        model = MiniLlava(get_config("sim-112m-llava", tok.vocab_size),
                          rng=derive(self.profile.seed, "init:112m-llava"))
        # The language tower starts from the pretrained base.
        base = self._pretrained_base().state_dict()
        model.llama.load_state_dict(base)
        if not self._load_into(key, model):
            p = self.profile
            align_cfg = TrainConfig(
                steps=p.llava_align_steps,
                batch_size=p.batch_size,
                lr=3e-3,
                warmup_steps=min(20, p.llava_align_steps // 4),
                seed=p.seed,
            )
            joint_cfg = TrainConfig(
                steps=p.llava_joint_steps,
                batch_size=p.batch_size,
                lr=1e-3,
                warmup_steps=min(20, p.llava_joint_steps // 4),
                seed=p.seed,
            )
            if variant == "ft":
                self._log(f"finetuning FT-LLaVA ({align_cfg.steps}+{joint_cfg.steps} steps)")
                data = self.train_pool()
            else:
                self._log(
                    f"distilling DT-LLaVA from {target_name} "
                    f"({align_cfg.steps}+{joint_cfg.steps} steps)"
                )
                data = generate_distillation_data(
                    self.target(target_name),
                    tok,
                    self.train_pool()[: self.profile.distill_pool_size],
                )
            finetune_multimodal_staged(model, tok, data, align_cfg, joint_cfg)
            self._save(key, model)
        model.eval()
        self._memo[key] = model
        return model

    # ------------------------------------------------------------------
    # AASD speculating modules
    # ------------------------------------------------------------------
    def aasd_head(
        self,
        target_name: str,
        use_kv_projector: bool = True,
        use_target_kv: bool = True,
    ) -> AASDDraftHead:
        """The trained speculating module (or an ablation variant)."""
        suffix = ""
        if not use_kv_projector:
            suffix += "-noproj"
        if not use_target_kv:
            suffix += "-notargetkv"
        key = f"aasd-{target_name}{suffix}"
        if key in self._memo:
            return self._memo[key]

        tok = self.tokenizer()
        target = self.target(target_name)
        head_config = DraftHeadConfig.for_target(
            target.config.llama,
            n_vision_tokens=target.n_vision_tokens,
            use_kv_projector=use_kv_projector,
            use_target_kv=use_target_kv,
        )
        head = AASDDraftHead(head_config, rng=derive(self.profile.seed, f"init:{key}"))
        head.init_from_target(target.llama)
        if not self._load_into(key, head):
            self._log(f"training AASD head {key} ({self.profile.aasd_steps} steps)")
            train_draft_head(
                head,
                target,
                tok,
                self.train_pool(),
                DraftTrainConfig(
                    steps=self.profile.aasd_steps,
                    batch_size=self.profile.batch_size,
                    lr=2e-3,
                    warmup_steps=min(30, self.profile.aasd_steps // 4),
                    seed=self.profile.seed,
                    gamma_train=5,
                    kl_weight=0.5,
                ),
            )
            self._save(key, head, meta={"target": target_name})
        head.eval()
        self._memo[key] = head
        return head
