"""Persist experiment results: JSON dumps and rendered reports."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Tuple

__all__ = ["results_to_json", "save_results", "load_results"]

RowKey = Tuple[str, int, str]


def results_to_json(results: Mapping[RowKey, Dict[str, float]]) -> str:
    """Serialise keyed results; tuple keys become 'target|gamma|row'."""
    payload = {
        f"{target}|{gamma}|{row}": metrics
        for (target, gamma, row), metrics in results.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def save_results(
    results: Mapping[RowKey, Dict[str, float]],
    path: Path,
    rendered: str = "",
) -> None:
    """Write ``<path>.json`` (data) and optionally ``<path>.txt`` (report)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.with_suffix(".json").write_text(results_to_json(results), encoding="utf-8")
    if rendered:
        path.with_suffix(".txt").write_text(rendered + "\n", encoding="utf-8")


def load_results(path: Path) -> Dict[RowKey, Dict[str, float]]:
    """Inverse of :func:`save_results` for the JSON file."""
    payload = json.loads(Path(path).with_suffix(".json").read_text(encoding="utf-8"))
    out: Dict[RowKey, Dict[str, float]] = {}
    for key, metrics in payload.items():
        target, gamma, row = key.split("|", 2)
        out[(target, int(gamma), row)] = metrics
    return out
