"""Persist experiment results: versioned JSON envelopes and rendered reports.

Every benchmark and experiment run saves through :func:`save_results`,
which since schema 1 wraps the keyed rows in a provenance envelope::

    {
      "schema": 1,
      "meta": {
        "created_utc": "2026-08-08T12:34:56Z",
        "created_unix_s": 1786537696.0,
        "git_sha": "009d74d...",          # null outside a git checkout
        "git_dirty": false,
        "config": {"profile": "smoke"}    # caller-provided knobs
      },
      "results": {"sim-7b|3|serving": {"tok_per_s": 312.9, ...}, ...}
    }

so a ``results/`` directory is a reconstructible perf trajectory: which
commit, which knobs, when.  :func:`load_results` returns just the rows
(and still reads the pre-envelope flat files); :func:`load_envelope`
returns rows *and* metadata — the perf-regression gate
(``scripts/perf_gate.py``) compares envelopes, not bare rows.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from ..obs.logsetup import get_logger

__all__ = [
    "SCHEMA_VERSION",
    "results_to_json",
    "run_metadata",
    "save_results",
    "load_results",
    "load_envelope",
]

logger = get_logger(__name__)

RowKey = Tuple[str, int, str]

#: Version of the on-disk results envelope written by :func:`save_results`.
SCHEMA_VERSION = 1


def results_to_json(results: Mapping[RowKey, Dict[str, float]]) -> str:
    """Serialise keyed results; tuple keys become 'target|gamma|row'."""
    payload = {
        f"{target}|{gamma}|{row}": metrics
        for (target, gamma, row), metrics in results.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _git_state(repo_dir: Path) -> Tuple[Optional[str], Optional[bool]]:
    """(commit sha, dirty?) of the checkout containing ``repo_dir``.

    Returns ``(None, None)`` when git is unavailable or the directory is
    not a work tree — results saved from an sdist install still stamp
    timestamps and config.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError) as exc:
        logger.debug("git provenance unavailable: %s",
                     exc, extra={"event": "git_provenance_unavailable"})
        return None, None


def run_metadata(config: Optional[Mapping[str, object]] = None,
                 repo_dir: Optional[Path] = None) -> Dict[str, object]:
    """Provenance stamp for one results file (time, git state, knobs)."""
    now = time.time()
    sha, dirty = _git_state(Path(repo_dir) if repo_dir is not None
                            else Path(__file__).resolve().parent)
    return {
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "created_unix_s": now,
        "git_sha": sha,
        "git_dirty": dirty,
        "config": dict(config) if config is not None else {},
    }


def save_results(
    results: Mapping[RowKey, Dict[str, float]],
    path: Path,
    rendered: str = "",
    config: Optional[Mapping[str, object]] = None,
) -> None:
    """Write ``<path>.json`` (envelope) and optionally ``<path>.txt`` (report).

    ``config`` lands in the envelope's ``meta.config`` — pass the knobs
    that shaped the run (zoo profile, token budget, targets) so later
    readers can tell incomparable runs apart.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    envelope = {
        "schema": SCHEMA_VERSION,
        "meta": run_metadata(config),
        "results": json.loads(results_to_json(results)),
    }
    path.with_suffix(".json").write_text(
        json.dumps(envelope, indent=2, sort_keys=True), encoding="utf-8"
    )
    if rendered:
        path.with_suffix(".txt").write_text(rendered + "\n", encoding="utf-8")


def _parse_rows(flat: Mapping[str, Dict[str, float]]) -> Dict[RowKey, Dict[str, float]]:
    out: Dict[RowKey, Dict[str, float]] = {}
    for key, metrics in flat.items():
        target, gamma, row = key.split("|", 2)
        out[(target, int(gamma), row)] = metrics
    return out


def load_envelope(path: Path) -> Tuple[Dict[RowKey, Dict[str, float]], Dict[str, object]]:
    """Load ``(results, meta)`` from a saved file.

    Pre-envelope flat files (no ``schema`` field) load with empty
    metadata, so old ``results/`` directories keep working.
    """
    payload = json.loads(Path(path).with_suffix(".json").read_text(encoding="utf-8"))
    if isinstance(payload, dict) and "schema" in payload and "results" in payload:
        return _parse_rows(payload["results"]), dict(payload.get("meta", {}))
    return _parse_rows(payload), {}


def load_results(path: Path) -> Dict[RowKey, Dict[str, float]]:
    """Inverse of :func:`save_results` for the JSON file (rows only)."""
    results, _ = load_envelope(path)
    return results
