"""Experiment runner: paired AR/SD evaluation over the three datasets.

The paper reports, for each configuration, the *mean of each metric across
the three datasets* (LLaVA-Bench-in-the-wild, COCO captions, ScienceQA).
The runner evaluates a decoder dataset-by-dataset against the shared
autoregressive baseline, caches the AR records (they do not depend on the
draft), and averages per-dataset reports metric-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.tasks import DATASET_NAMES, TaskDataset
from ..decoding.autoregressive import AutoregressiveDecoder
from ..decoding.base import Decoder
from ..decoding.cost_model import CostModel, get_profile
from ..decoding.metrics import DecodeRecord, SpeedupReport, aggregate_metrics
from ..errors import DecodingError
from ..obs.logsetup import get_logger
from ..obs.tracing import get_tracer
from ..zoo import ModelZoo

logger = get_logger(__name__)

__all__ = ["EvalConfig", "MeanReport", "ExperimentRunner", "mean_of_reports"]


@dataclass(frozen=True)
class EvalConfig:
    """Shared evaluation parameters."""

    datasets: Sequence[str] = DATASET_NAMES
    samples_per_dataset: int = 20
    max_new_tokens: int = 48

    def __post_init__(self) -> None:
        if self.samples_per_dataset <= 0:
            raise DecodingError("samples_per_dataset must be positive")


@dataclass
class MeanReport:
    """Per-dataset reports plus their metric-wise mean (the paper's cells)."""

    per_dataset: Dict[str, SpeedupReport] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        values = [getattr(r, metric) for r in self.per_dataset.values()]
        return float(np.mean(values))

    def sim_time_by_category(self) -> Dict[str, float]:
        """Per-phase simulated ms, summed across datasets."""
        merged: Dict[str, float] = {}
        for report in self.per_dataset.values():
            for category, ms in report.sim_time_by_category.items():
                merged[category] = merged.get(category, 0.0) + ms
        return merged

    def row(self) -> Dict[str, float]:
        row = {
            "omega": self.mean("walltime_speedup"),
            "alpha": self.mean("acceptance_rate"),
            "tau": self.mean("block_efficiency"),
            "delta": self.mean("decoding_speed"),
        }
        for category, ms in sorted(self.sim_time_by_category().items()):
            row[f"sim_ms:{category}"] = ms
        return row


def mean_of_reports(reports: Dict[str, SpeedupReport]) -> MeanReport:
    return MeanReport(per_dataset=dict(reports))


class ExperimentRunner:
    """Evaluates decoders against cached autoregressive baselines."""

    def __init__(self, zoo: ModelZoo, config: Optional[EvalConfig] = None) -> None:
        self.zoo = zoo
        self.config = config or EvalConfig()
        self._ar_cache: Dict[tuple, List[DecodeRecord]] = {}
        self._dataset_cache: Dict[str, TaskDataset] = {}

    # ------------------------------------------------------------------
    def dataset(self, name: str) -> TaskDataset:
        if name not in self._dataset_cache:
            self._dataset_cache[name] = self.zoo.eval_dataset(
                name, self.config.samples_per_dataset
            )
        return self._dataset_cache[name]

    def cost_model(self, target_name: str) -> CostModel:
        return CostModel(get_profile(target_name))

    def ar_records(self, target_name: str, dataset_name: str) -> List[DecodeRecord]:
        """Autoregressive records for (target, dataset), computed once."""
        key = (target_name, dataset_name)
        if key not in self._ar_cache:
            decoder = AutoregressiveDecoder(
                self.zoo.target(target_name),
                self.zoo.tokenizer(),
                self.cost_model(target_name),
                max_new_tokens=self.config.max_new_tokens,
            )
            with get_tracer().span(
                "ar_baseline", target=target_name, dataset=dataset_name
            ):
                self._ar_cache[key] = [
                    decoder.decode(s) for s in self.dataset(dataset_name)
                ]
            logger.info(
                "cached AR baseline",
                extra={"event": "ar_baseline", "target": target_name,
                       "dataset": dataset_name},
            )
        return self._ar_cache[key]

    # ------------------------------------------------------------------
    def evaluate(self, decoder: Decoder, target_name: str) -> MeanReport:
        """Run ``decoder`` over every dataset; aggregate vs the AR baseline."""
        reports: Dict[str, SpeedupReport] = {}
        with get_tracer().span("evaluate", decoder=decoder.name, target=target_name):
            for dataset_name in self.config.datasets:
                ar = self.ar_records(target_name, dataset_name)
                with get_tracer().span("eval_dataset", dataset=dataset_name) as sp:
                    sd = [decoder.decode(s) for s in self.dataset(dataset_name)]
                    reports[dataset_name] = aggregate_metrics(sd, ar)
                    sp.set_attr("omega", reports[dataset_name].walltime_speedup)
        return mean_of_reports(reports)

    def check_lossless(self, decoder: Decoder, target_name: str, n: int = 5) -> bool:
        """Greedy SD must reproduce the AR token stream exactly."""
        dataset_name = self.config.datasets[0]
        ar = self.ar_records(target_name, dataset_name)[:n]
        for ar_record, sample in zip(ar, self.dataset(dataset_name)):
            sd_record = decoder.decode(sample)
            if sd_record.token_ids != ar_record.token_ids:
                return False
        return True
