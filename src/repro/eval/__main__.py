"""CLI for regenerating the paper's tables and figures.

Usage:
    python -m repro.eval table1 [--profile full] [--samples 20] [--out results/table1]
    python -m repro.eval table2 | figure3 | figure4 | all
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..obs.logsetup import configure_logging, get_logger
from ..zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE
from .experiments import EXPERIMENTS
from .figures import render_figure3, render_figure4
from .reporting import save_results
from .runner import EvalConfig
from .svg import grouped_bar_chart, save_svg
from .tables import render_phase_breakdown, render_table1, render_table2

logger = get_logger(__name__)

_RENDERERS = {
    "table1": render_table1,
    "table2": render_table2,
    "figure3": render_figure3,
    "figure4": render_figure4,
}


def _figure_svg(name: str, results) -> str:
    """Build the SVG counterpart of a figure experiment's bar chart."""
    if name == "figure3":
        metric, title = "omega", "Figure 3: ablation on target model's KV cache (walltime speedup)"
        labels = ("w/o target kv", "w/ target kv")
    else:
        metric, title = "tau", "Figure 4: vision vs text KV importance (block efficiency)"
        labels = ("full kv", "no image kv", "no text kv")
    groups = sorted({(t, g) for t, g, _ in results})
    series = {
        label: [results.get((t, g, label), {}).get(metric, 0.0) for t, g in groups]
        for label in labels
    }
    return grouped_bar_chart(
        title,
        [f"{t} γ={g}" for t, g in groups],
        series,
        y_label=metric,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--profile", default="full", choices=["full", "smoke"])
    parser.add_argument("--samples", type=int, default=20)
    parser.add_argument("--max-new-tokens", type=int, default=48)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    configure_logging()
    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    config = EvalConfig(
        samples_per_dataset=args.samples, max_new_tokens=args.max_new_tokens
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        results = EXPERIMENTS[name](zoo, config)
        rendered = _RENDERERS[name](results)
        phases = render_phase_breakdown(results)
        if phases:
            rendered = f"{rendered}\n\n{phases}"
        print(rendered)
        print()
        save_results(results, Path(args.out) / name, rendered=rendered)
        logger.info("saved -> %s.json", Path(args.out) / name,
                    extra={"event": "results_saved", "experiment": name})
        if name in ("figure3", "figure4"):
            svg_path = save_svg(_figure_svg(name, results), Path(args.out) / f"{name}.svg")
            logger.info("saved -> %s", svg_path,
                        extra={"event": "svg_saved", "experiment": name})


if __name__ == "__main__":
    main()
