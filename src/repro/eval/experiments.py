"""Experiment registry: one function per paper table/figure.

Each function returns a plain dict of measured rows keyed exactly like the
corresponding paper-reference tables, so the renderers can put measured and
published numbers side by side.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..zoo import ModelZoo
from .baselines import TABLE1_ROWS, build_aasd_engine, build_row_decoder
from .runner import EvalConfig, ExperimentRunner

__all__ = [
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "EXPERIMENTS",
]

DEFAULT_TARGETS: Tuple[str, ...] = ("sim-7b", "sim-13b")
DEFAULT_GAMMAS: Tuple[int, ...] = (3, 5)

RowKey = Tuple[str, int, str]
Metrics = Dict[str, float]


def _runner(zoo: ModelZoo, config: Optional[EvalConfig]) -> ExperimentRunner:
    return ExperimentRunner(zoo, config or EvalConfig())


def run_table1(
    zoo: ModelZoo,
    config: Optional[EvalConfig] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    gammas: Sequence[int] = DEFAULT_GAMMAS,
    rows: Sequence[str] = TABLE1_ROWS,
) -> Dict[RowKey, Metrics]:
    """Table 1: AASD vs FT/DT independent drafts, all four metrics."""
    runner = _runner(zoo, config)
    results: Dict[RowKey, Metrics] = {}
    for target_name in targets:
        cost_model = runner.cost_model(target_name)
        for gamma in gammas:
            for row in rows:
                decoder = build_row_decoder(
                    row, zoo, target_name, gamma, cost_model,
                    max_new_tokens=runner.config.max_new_tokens,
                )
                report = runner.evaluate(decoder, target_name)
                results[(target_name, gamma, row)] = report.row()
    return results


def run_table2(
    zoo: ModelZoo,
    config: Optional[EvalConfig] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    gammas: Sequence[int] = DEFAULT_GAMMAS,
) -> Dict[RowKey, Metrics]:
    """Table 2: Vision KV Projector ablation (w/ vs w/o)."""
    runner = _runner(zoo, config)
    results: Dict[RowKey, Metrics] = {}
    for target_name in targets:
        cost_model = runner.cost_model(target_name)
        for gamma in gammas:
            for label, use_proj in (("w/o", False), ("w/", True)):
                engine = build_aasd_engine(
                    zoo, target_name, gamma, cost_model,
                    max_new_tokens=runner.config.max_new_tokens,
                    use_kv_projector=use_proj,
                )
                report = runner.evaluate(engine, target_name)
                results[(target_name, gamma, label)] = report.row()
    return results


def run_figure3(
    zoo: ModelZoo,
    config: Optional[EvalConfig] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    gammas: Sequence[int] = DEFAULT_GAMMAS,
) -> Dict[RowKey, Metrics]:
    """Figure 3: effect of reusing the target model's KV cache.

    Rows 'w/ target kv' vs 'w/o target kv'; the paper plots walltime
    speedup, we keep all four metrics.
    """
    runner = _runner(zoo, config)
    results: Dict[RowKey, Metrics] = {}
    for target_name in targets:
        cost_model = runner.cost_model(target_name)
        for gamma in gammas:
            for label, use_tkv in (("w/o target kv", False), ("w/ target kv", True)):
                engine = build_aasd_engine(
                    zoo, target_name, gamma, cost_model,
                    max_new_tokens=runner.config.max_new_tokens,
                    use_target_kv=use_tkv,
                )
                report = runner.evaluate(engine, target_name)
                results[(target_name, gamma, label)] = report.row()
    return results


def run_figure4(
    zoo: ModelZoo,
    config: Optional[EvalConfig] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    gammas: Sequence[int] = (3,),
) -> Dict[RowKey, Metrics]:
    """Figure 4: disable the image or text KV segments at inference.

    The paper plots block efficiency for [full, no image KV, no text KV].
    """
    runner = _runner(zoo, config)
    variants = (
        ("full kv", False, False),
        ("no image kv", True, False),
        ("no text kv", False, True),
    )
    results: Dict[RowKey, Metrics] = {}
    for target_name in targets:
        cost_model = runner.cost_model(target_name)
        for gamma in gammas:
            for label, no_img, no_txt in variants:
                engine = build_aasd_engine(
                    zoo, target_name, gamma, cost_model,
                    max_new_tokens=runner.config.max_new_tokens,
                    disable_image_kv=no_img,
                    disable_text_kv=no_txt,
                )
                report = runner.evaluate(engine, target_name)
                results[(target_name, gamma, label)] = report.row()
    return results


EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
}
