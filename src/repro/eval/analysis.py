"""Deeper analysis utilities beyond the paper's headline metrics.

* per-task metric breakdown (which workloads speculate well),
* acceptance-by-draft-position curves (how fast trust decays within a
  block — explains why tau saturates below gamma + 1),
* sweeps over the compression width k and the speculation depth gamma
  (design-choice ablations referenced by DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..data.tasks import MultimodalSample
from ..decoding.base import Decoder
from ..decoding.metrics import DecodeRecord, aggregate_metrics
from ..errors import DecodingError

__all__ = [
    "per_task_breakdown",
    "acceptance_by_position",
    "PositionalAcceptance",
    "block_length_histogram",
]


def per_task_breakdown(
    decoder: Decoder,
    baseline: Decoder,
    samples: Sequence[MultimodalSample],
) -> Dict[str, Dict[str, float]]:
    """Metrics grouped by task family (caption / conversation / ...)."""
    by_task: Dict[str, List[MultimodalSample]] = {}
    for sample in samples:
        by_task.setdefault(sample.task, []).append(sample)
    out: Dict[str, Dict[str, float]] = {}
    for task, group in sorted(by_task.items()):
        sd = [decoder.decode(s) for s in group]
        ar = [baseline.decode(s) for s in group]
        out[task] = aggregate_metrics(sd, ar).row()
    return out


@dataclass(frozen=True)
class PositionalAcceptance:
    """P(position i of a block is accepted), for i = 1..gamma."""

    rates: np.ndarray     # (gamma,)
    counts: np.ndarray    # (gamma,) blocks that reached each position

    @property
    def gamma(self) -> int:
        return len(self.rates)


def acceptance_by_position(records: Sequence[DecodeRecord]) -> PositionalAcceptance:
    """How acceptance decays with draft depth.

    Position ``i`` (0-based) of a block is accepted iff ``n_accepted > i``.
    Every block of length ``> i`` contributes one observation for position
    ``i``, so rates are monotonically non-increasing by construction of
    prefix acceptance.
    """
    blocks = [b for r in records for b in r.blocks]
    if not blocks:
        raise DecodingError("no blocks recorded")
    gamma = max(b.n_draft for b in blocks)
    accepted = np.zeros(gamma)
    counts = np.zeros(gamma)
    for b in blocks:
        for i in range(b.n_draft):
            counts[i] += 1
            if b.n_accepted > i:
                accepted[i] += 1
    with np.errstate(invalid="ignore"):
        rates = np.where(counts > 0, accepted / np.maximum(counts, 1), 0.0)
    return PositionalAcceptance(rates=rates, counts=counts)


def block_length_histogram(records: Sequence[DecodeRecord]) -> Dict[int, int]:
    """Histogram of accepted-prefix lengths across all blocks."""
    hist: Dict[int, int] = {}
    for record in records:
        for block in record.blocks:
            hist[block.n_accepted] = hist.get(block.n_accepted, 0) + 1
    return dict(sorted(hist.items()))
