"""Target-model quality measurement.

Speculative decoding is lossless, so *acceleration* metrics never depend on
target quality — but reproduction credibility does: the target must
actually ground its answers in the image.  These helpers quantify that:

* teacher-forced token accuracy on the response region,
* greedy exact-match rate against the templated ground truth,
* an image-grounding score (does swapping the image change the output?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.dataloader import IGNORE_INDEX, collate_multimodal
from ..data.tasks import MultimodalSample
from ..decoding.base import encode_prompt
from ..errors import DecodingError
from ..models.generation import GenerationLimits, greedy_generate
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..tokenizer import WordTokenizer

__all__ = ["QualityReport", "evaluate_quality", "image_grounding_score"]


@dataclass(frozen=True)
class QualityReport:
    """Target-quality summary over one sample set."""

    token_accuracy: float     # teacher-forced, response region
    exact_match: float        # greedy generation == ground truth
    n_samples: int

    def __str__(self) -> str:
        return (
            f"token accuracy {self.token_accuracy:.3f}, "
            f"exact match {self.exact_match:.3f} over {self.n_samples} samples"
        )


def evaluate_quality(
    model: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    max_new_tokens: int = 64,
    batch_size: int = 16,
) -> QualityReport:
    """Measure teacher-forced accuracy and greedy exact match."""
    if not samples:
        raise DecodingError("no samples to evaluate")

    correct = total = 0
    for start in range(0, len(samples), batch_size):
        batch = collate_multimodal(list(samples[start : start + batch_size]), tokenizer)
        with no_grad():
            out = model.forward_train(batch.images, batch.text_ids)
        pred = model.text_slice(out.logits).data.argmax(-1)
        mask = batch.labels != IGNORE_INDEX
        correct += int((pred[mask] == batch.labels[mask]).sum())
        total += int(mask.sum())

    limits = GenerationLimits(max_new_tokens=max_new_tokens, eos_id=tokenizer.vocab.eos_id)
    matches = 0
    for sample in samples:
        generated = greedy_generate(model, sample.image, encode_prompt(tokenizer, sample), limits)
        truth = tokenizer.decode(tokenizer.encode(sample.response, add_eos=True))
        matches += tokenizer.decode(generated) == truth

    return QualityReport(
        token_accuracy=correct / max(1, total),
        exact_match=matches / len(samples),
        n_samples=len(samples),
    )


def image_grounding_score(
    model: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    max_new_tokens: int = 32,
) -> float:
    """Fraction of samples whose output changes when the image is swapped.

    A model that ignores the image scores ~0; a grounded model scores ~1.
    Uses a cyclic shift of the images so every sample gets a different one.
    """
    if len(samples) < 2:
        raise DecodingError("need at least two samples to swap images")
    limits = GenerationLimits(max_new_tokens=max_new_tokens, eos_id=tokenizer.vocab.eos_id)
    changed = 0
    for i, sample in enumerate(samples):
        prompt_ids = encode_prompt(tokenizer, sample)
        own = greedy_generate(model, sample.image, prompt_ids, limits)
        other_image = samples[(i + 1) % len(samples)].image
        swapped = greedy_generate(model, other_image, prompt_ids, limits)
        changed += own != swapped
    return changed / len(samples)
