"""Evaluation harness: runner, baselines, experiments, renderers."""

from .analysis import (
    PositionalAcceptance,
    acceptance_by_position,
    block_length_histogram,
    per_task_breakdown,
)
from .baselines import TABLE1_ROWS, build_aasd_engine, build_row_decoder
from .experiments import (
    EXPERIMENTS,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from .figures import render_bars, render_figure3, render_figure4
from .paper_reference import (
    FIGURE3_EXPECTATION,
    FIGURE4_EXPECTATION,
    PAPER_TABLE1,
    PAPER_TABLE2,
)
from .quality import QualityReport, evaluate_quality, image_grounding_score
from .reporting import (
    SCHEMA_VERSION,
    load_envelope,
    load_results,
    results_to_json,
    run_metadata,
    save_results,
)
from .runner import EvalConfig, ExperimentRunner, MeanReport, mean_of_reports
from .svg import grouped_bar_chart, save_svg
from .tables import (
    render_comparison,
    render_phase_breakdown,
    render_table1,
    render_table2,
)

__all__ = [
    "EvalConfig",
    "ExperimentRunner",
    "MeanReport",
    "mean_of_reports",
    "build_row_decoder",
    "build_aasd_engine",
    "TABLE1_ROWS",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "EXPERIMENTS",
    "render_table1",
    "render_table2",
    "render_comparison",
    "render_phase_breakdown",
    "render_bars",
    "render_figure3",
    "render_figure4",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "FIGURE3_EXPECTATION",
    "FIGURE4_EXPECTATION",
    "results_to_json",
    "save_results",
    "load_results",
    "load_envelope",
    "run_metadata",
    "SCHEMA_VERSION",
    "per_task_breakdown",
    "acceptance_by_position",
    "PositionalAcceptance",
    "block_length_histogram",
    "grouped_bar_chart",
    "save_svg",
    "QualityReport",
    "evaluate_quality",
    "image_grounding_score",
]
