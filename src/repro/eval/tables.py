"""Render measured-vs-paper tables as aligned text (and markdown)."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from .paper_reference import PAPER_TABLE1, PAPER_TABLE2, TABLE1_ROWS

__all__ = ["render_table1", "render_table2", "render_comparison", "render_phase_breakdown"]

METRICS = ("omega", "alpha", "tau", "delta")
_HEADERS = {"omega": "ω", "alpha": "α", "tau": "τ", "delta": "δ"}

RowKey = Tuple[str, int, str]


def _fmt(value: Optional[float], metric: str) -> str:
    if value is None:
        return "   -  "
    if metric == "delta":
        return f"{value:6.2f}"
    return f"{value:6.2f}"


def render_comparison(
    title: str,
    measured: Mapping[RowKey, Dict[str, float]],
    reference: Mapping[RowKey, Dict[str, float]],
    row_order: Sequence[RowKey],
) -> str:
    """Side-by-side measured vs paper values for each row/metric."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'target':>9} {'γ':>2} {'draft':>14} | "
        + " ".join(f"{_HEADERS[m]:>6}" for m in METRICS)
        + " | "
        + " ".join(f"{_HEADERS[m] + '†':>6}" for m in METRICS)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key in row_order:
        target, gamma, row = key
        ours = measured.get(key)
        paper = reference.get(key)
        if ours is None:
            continue
        cells = " ".join(_fmt(ours.get(m), m) for m in METRICS)
        refs = " ".join(
            _fmt(paper.get(m) if paper else None, m) for m in METRICS
        )
        lines.append(f"{target:>9} {gamma:>2} {row:>14} | {cells} | {refs}")
    lines.append("† = values published in the paper (GPU hardware).")
    return "\n".join(lines)


def render_phase_breakdown(measured: Mapping[RowKey, Dict[str, float]]) -> str:
    """Per-phase simulated-time table from the ``sim_ms:<phase>`` row keys.

    Rows without per-phase charges (e.g. loaded from legacy results files)
    are skipped; returns "" when nothing has phase data.
    """
    categories = sorted(
        {
            key.split(":", 1)[1]
            for metrics in measured.values()
            for key in metrics
            if key.startswith("sim_ms:")
        }
    )
    if not categories:
        return ""
    title = "Simulated time per phase (ms, summed over datasets)"
    lines = [title, "=" * len(title)]
    header = f"{'target':>9} {'γ':>2} {'draft':>14} | " + " ".join(
        f"{c:>10}" for c in categories
    )
    lines.append(header)
    lines.append("-" * len(header))
    for (target, gamma, row), metrics in measured.items():
        cells = [metrics.get(f"sim_ms:{c}") for c in categories]
        if all(v is None for v in cells):
            continue
        rendered = " ".join(
            f"{v:10.1f}" if v is not None else f"{'-':>10}" for v in cells
        )
        lines.append(f"{target:>9} {gamma:>2} {row:>14} | {rendered}")
    return "\n".join(lines)


def render_table1(
    measured: Mapping[RowKey, Dict[str, float]],
    targets: Sequence[str] = ("sim-7b", "sim-13b"),
    gammas: Sequence[int] = (3, 5),
) -> str:
    order = [
        (t, g, row)
        for t in targets
        for g in gammas
        for row in TABLE1_ROWS
    ]
    return render_comparison(
        "Table 1: comparison with usual methods (mean of 3 datasets)",
        measured,
        PAPER_TABLE1,
        order,
    )


def render_table2(
    measured: Mapping[RowKey, Dict[str, float]],
    targets: Sequence[str] = ("sim-7b", "sim-13b"),
    gammas: Sequence[int] = (3, 5),
) -> str:
    order = [
        (t, g, label)
        for t in targets
        for g in gammas
        for label in ("w/o", "w/")
    ]
    return render_comparison(
        "Table 2: ablation on Vision KV Projector (mean of 3 datasets)",
        measured,
        PAPER_TABLE2,
        order,
    )
