"""Render Figure 3 / Figure 4 data as ASCII bar charts plus raw series."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

__all__ = ["render_bars", "render_figure3", "render_figure4"]

RowKey = Tuple[str, int, str]


def render_bars(
    title: str,
    series: Mapping[str, float],
    unit: str = "",
    width: int = 40,
) -> str:
    """One labelled horizontal bar per entry, scaled to the max value."""
    lines = [title, "-" * len(title)]
    peak = max(series.values()) if series else 1.0
    peak = peak if peak > 0 else 1.0
    label_w = max((len(k) for k in series), default=4)
    for label, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:>{label_w}} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_figure3(
    measured: Mapping[RowKey, Dict[str, float]],
    targets: Sequence[str] = ("sim-7b", "sim-13b"),
    gammas: Sequence[int] = (3, 5),
) -> str:
    """Figure 3: walltime speedup with vs without the target KV cache."""
    blocks = []
    for target in targets:
        for gamma in gammas:
            series = {}
            for label in ("w/o target kv", "w/ target kv"):
                row = measured.get((target, gamma, label))
                if row:
                    series[label] = row["omega"]
            if series:
                blocks.append(
                    render_bars(
                        f"Figure 3 — {target}, γ={gamma}: walltime speedup ω",
                        series,
                        unit="x",
                    )
                )
    return "\n\n".join(blocks)


def render_figure4(
    measured: Mapping[RowKey, Dict[str, float]],
    targets: Sequence[str] = ("sim-7b", "sim-13b"),
    gammas: Sequence[int] = (3,),
) -> str:
    """Figure 4: block efficiency with modality KV segments disabled."""
    blocks = []
    for target in targets:
        for gamma in gammas:
            series = {}
            for label in ("full kv", "no image kv", "no text kv"):
                row = measured.get((target, gamma, label))
                if row:
                    series[label] = row["tau"]
            if series:
                blocks.append(
                    render_bars(
                        f"Figure 4 — {target}, γ={gamma}: block efficiency τ",
                        series,
                    )
                )
    return "\n\n".join(blocks)
