"""Minimal SVG chart writer (no plotting dependencies available offline).

Produces grouped bar charts good enough to eyeball Figure 3 / Figure 4
reproductions; written as plain strings, viewable in any browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Sequence

__all__ = ["grouped_bar_chart", "save_svg"]

_PALETTE = ("#4878a8", "#e49444", "#5ba053", "#d1605e", "#857aab", "#64b5cd")


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    y_label: str = "",
    width: int = 640,
    height: int = 360,
) -> str:
    """Render a grouped bar chart to an SVG string.

    ``groups`` are x-axis clusters (e.g. "sim-7b γ=3"); ``series`` maps a
    legend label to one value per group.
    """
    for label, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {label!r} has {len(values)} values for {len(groups)} groups"
            )
    margin_l, margin_r, margin_t, margin_b = 60, 20, 48, 64
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    peak = max((max(v) for v in series.values()), default=1.0)
    peak = peak * 1.15 if peak > 0 else 1.0

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="24" text-anchor="middle" font-size="16" '
        f'font-weight="bold">{_esc(title)}</text>',
    ]

    # y axis with 4 gridlines
    for i in range(5):
        frac = i / 4
        y = margin_t + plot_h * (1 - frac)
        value = peak * frac
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - margin_r}" y2="{y:.1f}" '
            f'stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11">{value:.2f}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2}" font-size="12" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2})">{_esc(y_label)}</text>'
        )

    n_groups = len(groups)
    n_series = max(1, len(series))
    group_w = plot_w / max(1, n_groups)
    bar_w = group_w * 0.8 / n_series

    for gi, group in enumerate(groups):
        gx = margin_l + gi * group_w
        for si, (label, values) in enumerate(series.items()):
            value = values[gi]
            bar_h = plot_h * value / peak
            x = gx + group_w * 0.1 + si * bar_w
            y = margin_t + plot_h - bar_h
            color = _PALETTE[si % len(_PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w * 0.92:.1f}" '
                f'height="{bar_h:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + bar_w * 0.46:.1f}" y="{y - 4:.1f}" text-anchor="middle" '
                f'font-size="10">{value:.2f}</text>'
            )
        parts.append(
            f'<text x="{gx + group_w / 2:.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle" font-size="11">{_esc(group)}</text>'
        )

    # legend
    lx = margin_l
    ly = height - 18
    for si, label in enumerate(series):
        color = _PALETTE[si % len(_PALETTE)]
        parts.append(f'<rect x="{lx}" y="{ly - 10}" width="12" height="12" fill="{color}"/>')
        parts.append(f'<text x="{lx + 16}" y="{ly}" font-size="11">{_esc(label)}</text>')
        lx += 16 + 8 * len(label) + 24

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: Path) -> Path:
    """Write an SVG string to disk, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg, encoding="utf-8")
    return path
