"""The paper's published numbers, used as reference columns in our reports.

All values are transcribed from the AASD paper (DAC 2025): Table 1 (main
comparison), Table 2 (Vision KV Projector ablation), and the qualitative
shapes of Figures 3 and 4.  Keys: (target, gamma, row) -> metric dict with
the paper's metric names omega/alpha/tau/delta.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "TABLE1_ROWS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "FIGURE3_EXPECTATION",
    "FIGURE4_EXPECTATION",
]

TABLE1_ROWS = ("FT-LLaMA", "DT-LLaMA", "FT-LLaVA", "DT-LLaVA", "Ours")

Metric = Dict[str, float]
Key = Tuple[str, int, str]

PAPER_TABLE1: Dict[Key, Metric] = {
    # LLaVA-7B, gamma=3
    ("sim-7b", 3, "FT-LLaMA"): {"omega": 1.39, "alpha": 0.35, "tau": 1.93, "delta": 46.13},
    ("sim-7b", 3, "DT-LLaMA"): {"omega": 1.33, "alpha": 0.34, "tau": 1.96, "delta": 45.00},
    ("sim-7b", 3, "FT-LLaVA"): {"omega": 1.27, "alpha": 0.28, "tau": 1.68, "delta": 40.57},
    ("sim-7b", 3, "DT-LLaVA"): {"omega": 1.25, "alpha": 0.27, "tau": 1.69, "delta": 39.50},
    ("sim-7b", 3, "Ours"): {"omega": 2.02, "alpha": 0.62, "tau": 2.72, "delta": 63.59},
    # LLaVA-7B, gamma=5
    ("sim-7b", 5, "FT-LLaMA"): {"omega": 1.37, "alpha": 0.34, "tau": 2.55, "delta": 42.77},
    ("sim-7b", 5, "DT-LLaMA"): {"omega": 1.37, "alpha": 0.34, "tau": 2.54, "delta": 43.71},
    ("sim-7b", 5, "FT-LLaVA"): {"omega": 1.21, "alpha": 0.28, "tau": 2.22, "delta": 38.35},
    ("sim-7b", 5, "DT-LLaVA"): {"omega": 1.21, "alpha": 0.28, "tau": 2.21, "delta": 38.34},
    ("sim-7b", 5, "Ours"): {"omega": 2.06, "alpha": 0.62, "tau": 3.92, "delta": 65.02},
    # LLaVA-13B, gamma=3
    ("sim-13b", 3, "FT-LLaMA"): {"omega": 1.46, "alpha": 0.35, "tau": 1.89, "delta": 46.06},
    ("sim-13b", 3, "DT-LLaMA"): {"omega": 1.44, "alpha": 0.34, "tau": 1.87, "delta": 45.20},
    ("sim-13b", 3, "FT-LLaVA"): {"omega": 1.36, "alpha": 0.30, "tau": 1.75, "delta": 42.46},
    ("sim-13b", 3, "DT-LLaVA"): {"omega": 1.35, "alpha": 0.29, "tau": 1.71, "delta": 41.83},
    ("sim-13b", 3, "Ours"): {"omega": 2.14, "alpha": 0.63, "tau": 2.74, "delta": 67.78},
    # LLaVA-13B, gamma=5
    ("sim-13b", 5, "FT-LLaMA"): {"omega": 1.44, "alpha": 0.35, "tau": 2.60, "delta": 45.29},
    ("sim-13b", 5, "DT-LLaMA"): {"omega": 1.44, "alpha": 0.35, "tau": 2.61, "delta": 45.66},
    ("sim-13b", 5, "FT-LLaVA"): {"omega": 1.32, "alpha": 0.30, "tau": 2.35, "delta": 42.20},
    ("sim-13b", 5, "DT-LLaVA"): {"omega": 1.31, "alpha": 0.29, "tau": 2.37, "delta": 41.64},
    ("sim-13b", 5, "Ours"): {"omega": 2.24, "alpha": 0.62, "tau": 3.99, "delta": 70.45},
}

#: (target, gamma, "w/"|"w/o") -> metrics.
PAPER_TABLE2: Dict[Key, Metric] = {
    ("sim-7b", 3, "w/o"): {"omega": 1.64, "alpha": 0.49, "tau": 2.33, "delta": 51.48},
    ("sim-7b", 3, "w/"): {"omega": 2.02, "alpha": 0.62, "tau": 2.72, "delta": 63.59},
    ("sim-7b", 5, "w/o"): {"omega": 1.56, "alpha": 0.47, "tau": 3.21, "delta": 48.98},
    ("sim-7b", 5, "w/"): {"omega": 2.06, "alpha": 0.62, "tau": 3.92, "delta": 65.02},
    ("sim-13b", 3, "w/o"): {"omega": 1.72, "alpha": 0.49, "tau": 2.30, "delta": 54.27},
    ("sim-13b", 3, "w/"): {"omega": 2.14, "alpha": 0.63, "tau": 2.74, "delta": 67.78},
    ("sim-13b", 5, "w/o"): {"omega": 1.70, "alpha": 0.48, "tau": 3.26, "delta": 53.69},
    ("sim-13b", 5, "w/"): {"omega": 2.24, "alpha": 0.62, "tau": 3.99, "delta": 70.45},
}

#: Figure 3 is a bar chart without printed values; the claim is a large
#: walltime-speedup gain from reusing the target KV cache.
FIGURE3_EXPECTATION = "with target KV cache >> without, in walltime speedup"

#: Figure 4's claim: disabling the text KV hurts block efficiency far more
#: than disabling the image KV.
FIGURE4_EXPECTATION = "tau(full) >= tau(no image KV) >> tau(no text KV)"
