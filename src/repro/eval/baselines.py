"""Factories building every Table-1 row decoder from zoo artifacts."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import AASDEngine, AASDEngineConfig
from ..decoding.base import Decoder
from ..decoding.cost_model import CostModel
from ..decoding.sampling import SamplerConfig
from ..decoding.speculative import LlamaTextDraft, LlavaDraft, SpeculativeDecoder
from ..errors import ConfigError
from ..zoo import ModelZoo
from .paper_reference import TABLE1_ROWS

__all__ = ["build_row_decoder", "build_aasd_engine", "TABLE1_ROWS"]


def build_aasd_engine(
    zoo: ModelZoo,
    target_name: str,
    gamma: int,
    cost_model: CostModel,
    max_new_tokens: int = 48,
    use_kv_projector: bool = True,
    use_target_kv: bool = True,
    disable_image_kv: bool = False,
    disable_text_kv: bool = False,
    sampler_config: Optional[SamplerConfig] = None,
    seed: int = 0,
    config: Optional[AASDEngineConfig] = None,
) -> AASDEngine:
    """Assemble an AASD engine (possibly an ablation variant).

    ``config`` replaces the assembled :class:`AASDEngineConfig` wholesale
    (tree-speculation benchmarks need the tree knobs); when given, the
    ``gamma`` / ``max_new_tokens`` / ablation arguments are ignored in
    its favor.
    """
    return AASDEngine(
        zoo.target(target_name),
        zoo.aasd_head(target_name, use_kv_projector=use_kv_projector, use_target_kv=use_target_kv),
        zoo.tokenizer(),
        cost_model,
        config
        or AASDEngineConfig(
            gamma=gamma,
            max_new_tokens=max_new_tokens,
            disable_image_kv=disable_image_kv,
            disable_text_kv=disable_text_kv,
        ),
        sampler_config=sampler_config,
        rng=np.random.default_rng(seed),
    )


def build_row_decoder(
    row: str,
    zoo: ModelZoo,
    target_name: str,
    gamma: int,
    cost_model: CostModel,
    max_new_tokens: int = 48,
    sampler_config: Optional[SamplerConfig] = None,
    seed: int = 0,
) -> Decoder:
    """Build the decoder for one Table-1 row label."""
    if row not in TABLE1_ROWS:
        raise ConfigError(f"unknown Table 1 row {row!r}; choose from {TABLE1_ROWS}")
    if row == "Ours":
        return build_aasd_engine(
            zoo, target_name, gamma, cost_model,
            max_new_tokens=max_new_tokens, sampler_config=sampler_config, seed=seed,
        )
    variant = "ft" if row.startswith("FT") else "dt"
    if row.endswith("LLaMA"):
        draft = LlamaTextDraft(zoo.text_draft(variant, target_name), label=row.lower())
    else:
        draft = LlavaDraft(zoo.llava_draft(variant, target_name), label=row.lower())
    return SpeculativeDecoder(
        zoo.target(target_name),
        draft,
        zoo.tokenizer(),
        cost_model,
        gamma=gamma,
        max_new_tokens=max_new_tokens,
        sampler_config=sampler_config,
        rng=np.random.default_rng(seed),
    )
