"""Speculative-decoding metrics: the four numbers the paper reports.

* walltime speedup  (omega) — AR time / SD time for the same generations,
* acceptance rate   (alpha) — mean fraction of draft tokens accepted,
* block efficiency  (tau)   — mean tokens emitted per target forward,
* decoding speed    (delta) — tokens per (simulated) second.

Beyond the per-sample fields, every mutation funnels the same event into
the process-wide metrics registry (:mod:`repro.obs.metrics`), so
cross-sample totals (``decode.tokens_accepted_total``,
``decode.draft_faults_total``, ...) are available without re-walking
records, and fault events are logged structurally via ``logging``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import DecodingError
from ..obs.logsetup import get_logger
from ..obs.metrics import get_registry
from ..utils.timing import SimulatedClock

__all__ = ["BlockRecord", "DecodeRecord", "SpeedupReport", "aggregate_metrics"]

logger = get_logger(__name__)

#: Bucket ladder for ``decode.block_efficiency``: tokens emitted per verify
#: forward are small integers (1 .. gamma+1, or up to the tree node budget),
#: so the default latency ladder would crush them into two buckets.
BLOCK_EFFICIENCY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0)


def _update_acceptance_gauge(registry) -> None:
    """Refresh ``decode.accepted_tokens_per_target_forward``.

    Ratio of the process-wide emitted-token and target-forward counters —
    the tree-speculation headline: how many committed tokens each target
    forward (verify, prefill, or fallback) buys on average.
    """
    forwards = registry.counter("decode.target_forwards_total").value
    if forwards > 0:
        emitted = registry.counter("decode.tokens_emitted_total").value
        registry.gauge("decode.accepted_tokens_per_target_forward").set(
            emitted / forwards
        )


@dataclass(frozen=True)
class BlockRecord:
    """One draft-then-verify round."""

    n_draft: int       # gamma tokens proposed
    n_accepted: int    # of those, how many the target accepted
    n_emitted: int     # tokens committed this round (accepted + 1)

    def __post_init__(self) -> None:
        if not 0 <= self.n_accepted <= self.n_draft:
            raise DecodingError(
                f"invalid block: {self.n_accepted} accepted of {self.n_draft} drafted"
            )


@dataclass
class DecodeRecord:
    """Everything measured while decoding one sample.

    The fault fields track graceful degradation: ``fallback_mode`` is
    ``"none"`` for a clean decode, ``"degraded"`` once any draft block was
    skipped due to a fault, and ``"target-only"`` after the engine gave up
    on speculation entirely for the rest of the sample.

    Simulated charges should go through :meth:`charge_sim` so they land in
    ``sim_by_category`` (prefill/draft/verify/...) as well as the total;
    direct ``sim_time_ms +=`` still works but stays uncategorised.
    """

    token_ids: List[int] = field(default_factory=list)
    request_id: Optional[str] = None   # serving-layer attribution (None when decoded directly)
    sim_time_ms: float = 0.0
    wall_time_s: float = 0.0
    ttft_wall_s: float = 0.0           # wall time to first committed token (prefill)
    blocks: List[BlockRecord] = field(default_factory=list)
    n_target_forwards: int = 0
    text: str = ""
    n_draft_faults: int = 0
    n_fallback_steps: int = 0
    fallback_mode: str = "none"
    fault_log: List[str] = field(default_factory=list)
    sim_clock: SimulatedClock = field(default_factory=SimulatedClock)

    @property
    def n_tokens(self) -> int:
        return len(self.token_ids)

    @property
    def degraded(self) -> bool:
        """True when any fault forced a fallback during this decode."""
        return self.fallback_mode != "none"

    @property
    def sim_by_category(self) -> Dict[str, float]:
        """Simulated ms per phase category (prefill, draft, verify, ...)."""
        return self.sim_clock.by_category

    # ------------------------------------------------------------------
    # Mutation funnels: record fields + process-wide registry together.
    # ------------------------------------------------------------------
    def charge_sim(self, ms: float, category: str = "other") -> float:
        """Charge simulated milliseconds under ``category``; returns ms."""
        self.sim_time_ms += ms
        self.sim_clock.charge(ms, category)
        return ms

    def add_block(self, block: BlockRecord) -> None:
        """Record one draft-then-verify round."""
        self.blocks.append(block)
        registry = get_registry()
        registry.counter("decode.blocks_total").inc()
        registry.counter("decode.tokens_drafted_total").inc(block.n_draft)
        registry.counter("decode.tokens_accepted_total").inc(block.n_accepted)
        registry.counter("decode.tokens_emitted_total").inc(block.n_emitted)
        registry.histogram(
            "decode.block_efficiency",
            buckets=BLOCK_EFFICIENCY_BUCKETS,
        ).observe(block.n_emitted)
        _update_acceptance_gauge(registry)

    def count_target_forward(self) -> None:
        self.n_target_forwards += 1
        registry = get_registry()
        registry.counter("decode.target_forwards_total").inc()
        _update_acceptance_gauge(registry)

    def count_fallback_step(self) -> None:
        self.n_fallback_steps += 1
        get_registry().counter("decode.fallback_steps_total").inc()

    def note_fault(self, message: str) -> None:
        """Record one draft fault and mark the decode as degraded."""
        self.n_draft_faults += 1
        self.fault_log.append(message)
        if self.fallback_mode == "none":
            self.fallback_mode = "degraded"
        get_registry().counter("decode.draft_faults_total").inc()
        logger.warning(
            "draft fault: %s",
            message,
            extra={
                "event": "draft_fault",
                "n_draft_faults": self.n_draft_faults,
                "fallback_mode": self.fallback_mode,
            },
        )


def _merge_sim_categories(records: Sequence[DecodeRecord]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for record in records:
        for category, ms in record.sim_by_category.items():
            merged[category] = merged.get(category, 0.0) + ms
    return merged


@dataclass(frozen=True)
class SpeedupReport:
    """Aggregate of paired AR/SD runs over a dataset (paper metric names)."""

    walltime_speedup: float    # omega
    acceptance_rate: float     # alpha
    block_efficiency: float    # tau
    decoding_speed: float      # delta, tokens / simulated second
    ar_decoding_speed: float   # baseline tokens / simulated second
    n_samples: int
    n_tokens_sd: int
    n_tokens_ar: int
    wall_speedup_raw: float    # real Python wall-time ratio (secondary)
    n_draft_faults: int = 0        # total draft faults across SD records
    n_fallback_steps: int = 0      # target-only steps taken on fault
    degraded_fraction: float = 0.0  # fraction of SD records that degraded
    #: committed tokens per target forward across the SD run (prefill and
    #: fallback forwards included) — the tree-speculation headline number.
    accepted_per_target_forward: float = 0.0
    sim_time_by_category: Dict[str, float] = field(default_factory=dict)
    # ^ SD simulated ms per phase, summed over records (empty for legacy
    #   records that charged the total directly).

    def row(self) -> dict:
        """Flat dict used by the table renderers (the four paper metrics).

        Per-phase simulated time lives in :attr:`sim_time_by_category`;
        :meth:`repro.eval.runner.MeanReport.row` merges it in as
        ``sim_ms:<category>`` keys for the experiment tables.
        """
        return {
            "omega": self.walltime_speedup,
            "alpha": self.acceptance_rate,
            "tau": self.block_efficiency,
            "delta": self.decoding_speed,
        }


def aggregate_metrics(
    sd_records: Sequence[DecodeRecord],
    ar_records: Sequence[DecodeRecord],
) -> SpeedupReport:
    """Combine per-sample records into the paper's four metrics.

    ``sd_records`` and ``ar_records`` must cover the same samples in the
    same order (under greedy decoding their token streams are identical, as
    speculative decoding is lossless).
    """
    if len(sd_records) != len(ar_records):
        raise DecodingError(
            f"paired runs required: {len(sd_records)} SD vs {len(ar_records)} AR records"
        )
    if not sd_records:
        raise DecodingError("cannot aggregate zero records")

    sd_time = sum(r.sim_time_ms for r in sd_records)
    ar_time = sum(r.sim_time_ms for r in ar_records)
    sd_wall = sum(r.wall_time_s for r in sd_records)
    ar_wall = sum(r.wall_time_s for r in ar_records)
    sd_tokens = sum(r.n_tokens for r in sd_records)
    ar_tokens = sum(r.n_tokens for r in ar_records)
    sd_forwards = sum(r.n_target_forwards for r in sd_records)

    blocks = [b for r in sd_records for b in r.blocks]
    # Fully-degraded runs (speculation disabled on every sample) have no
    # blocks; report zero acceptance instead of refusing to aggregate.
    drafted = [b for b in blocks if b.n_draft > 0]
    if drafted:
        acceptance = sum(b.n_accepted / b.n_draft for b in drafted) / len(drafted)
    elif any(r.degraded for r in sd_records):
        acceptance = 0.0
    else:
        raise DecodingError("SD records contain no blocks")
    block_eff = (
        sum(b.n_emitted for b in blocks) / len(blocks) if blocks else 1.0
    )

    if sd_time <= 0 or ar_time <= 0:
        raise DecodingError("simulated times must be positive")

    return SpeedupReport(
        walltime_speedup=ar_time / sd_time,
        acceptance_rate=acceptance,
        block_efficiency=block_eff,
        decoding_speed=sd_tokens / (sd_time / 1000.0),
        ar_decoding_speed=ar_tokens / (ar_time / 1000.0),
        n_samples=len(sd_records),
        n_tokens_sd=sd_tokens,
        n_tokens_ar=ar_tokens,
        wall_speedup_raw=(ar_wall / sd_wall) if sd_wall > 0 else float("nan"),
        n_draft_faults=sum(r.n_draft_faults for r in sd_records),
        n_fallback_steps=sum(r.n_fallback_steps for r in sd_records),
        degraded_fraction=sum(r.degraded for r in sd_records) / len(sd_records),
        accepted_per_target_forward=(
            sd_tokens / sd_forwards if sd_forwards > 0 else 0.0
        ),
        sim_time_by_category=_merge_sim_categories(sd_records),
    )
