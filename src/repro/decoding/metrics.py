"""Speculative-decoding metrics: the four numbers the paper reports.

* walltime speedup  (omega) — AR time / SD time for the same generations,
* acceptance rate   (alpha) — mean fraction of draft tokens accepted,
* block efficiency  (tau)   — mean tokens emitted per target forward,
* decoding speed    (delta) — tokens per (simulated) second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import DecodingError

__all__ = ["BlockRecord", "DecodeRecord", "SpeedupReport", "aggregate_metrics"]


@dataclass(frozen=True)
class BlockRecord:
    """One draft-then-verify round."""

    n_draft: int       # gamma tokens proposed
    n_accepted: int    # of those, how many the target accepted
    n_emitted: int     # tokens committed this round (accepted + 1)

    def __post_init__(self) -> None:
        if not 0 <= self.n_accepted <= self.n_draft:
            raise DecodingError(
                f"invalid block: {self.n_accepted} accepted of {self.n_draft} drafted"
            )


@dataclass
class DecodeRecord:
    """Everything measured while decoding one sample."""

    token_ids: List[int] = field(default_factory=list)
    sim_time_ms: float = 0.0
    wall_time_s: float = 0.0
    blocks: List[BlockRecord] = field(default_factory=list)
    n_target_forwards: int = 0
    text: str = ""

    @property
    def n_tokens(self) -> int:
        return len(self.token_ids)


@dataclass(frozen=True)
class SpeedupReport:
    """Aggregate of paired AR/SD runs over a dataset (paper metric names)."""

    walltime_speedup: float    # omega
    acceptance_rate: float     # alpha
    block_efficiency: float    # tau
    decoding_speed: float      # delta, tokens / simulated second
    ar_decoding_speed: float   # baseline tokens / simulated second
    n_samples: int
    n_tokens_sd: int
    n_tokens_ar: int
    wall_speedup_raw: float    # real Python wall-time ratio (secondary)

    def row(self) -> dict:
        """Flat dict used by the table renderers."""
        return {
            "omega": self.walltime_speedup,
            "alpha": self.acceptance_rate,
            "tau": self.block_efficiency,
            "delta": self.decoding_speed,
        }


def aggregate_metrics(
    sd_records: Sequence[DecodeRecord],
    ar_records: Sequence[DecodeRecord],
) -> SpeedupReport:
    """Combine per-sample records into the paper's four metrics.

    ``sd_records`` and ``ar_records`` must cover the same samples in the
    same order (under greedy decoding their token streams are identical, as
    speculative decoding is lossless).
    """
    if len(sd_records) != len(ar_records):
        raise DecodingError(
            f"paired runs required: {len(sd_records)} SD vs {len(ar_records)} AR records"
        )
    if not sd_records:
        raise DecodingError("cannot aggregate zero records")

    sd_time = sum(r.sim_time_ms for r in sd_records)
    ar_time = sum(r.sim_time_ms for r in ar_records)
    sd_wall = sum(r.wall_time_s for r in sd_records)
    ar_wall = sum(r.wall_time_s for r in ar_records)
    sd_tokens = sum(r.n_tokens for r in sd_records)
    ar_tokens = sum(r.n_tokens for r in ar_records)

    blocks = [b for r in sd_records for b in r.blocks]
    if not blocks:
        raise DecodingError("SD records contain no blocks")
    acceptance = sum(b.n_accepted / b.n_draft for b in blocks) / len(blocks)
    block_eff = sum(b.n_emitted for b in blocks) / len(blocks)

    if sd_time <= 0 or ar_time <= 0:
        raise DecodingError("simulated times must be positive")

    return SpeedupReport(
        walltime_speedup=ar_time / sd_time,
        acceptance_rate=acceptance,
        block_efficiency=block_eff,
        decoding_speed=sd_tokens / (sd_time / 1000.0),
        ar_decoding_speed=ar_tokens / (ar_time / 1000.0),
        n_samples=len(sd_records),
        n_tokens_sd=sd_tokens,
        n_tokens_ar=ar_tokens,
        wall_speedup_raw=(ar_wall / sd_wall) if sd_wall > 0 else float("nan"),
    )
