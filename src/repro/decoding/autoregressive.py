"""Autoregressive baseline decoder (the paper's 1.00x reference)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.tasks import MultimodalSample
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..obs.tracing import Tracer, get_tracer
from ..tokenizer import WordTokenizer
from ..utils.timing import WallTimer
from .base import Decoder, encode_prompt
from .cost_model import CostModel
from .metrics import DecodeRecord
from .sampling import Sampler, SamplerConfig

__all__ = ["AutoregressiveDecoder"]


class AutoregressiveDecoder(Decoder):
    """Plain one-token-per-forward decoding of the target MLLM."""

    def __init__(
        self,
        target: MiniLlava,
        tokenizer: WordTokenizer,
        cost_model: CostModel,
        max_new_tokens: int = 64,
        sampler_config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.target = target
        self.tokenizer = tokenizer
        self.cost_model = cost_model
        self.max_new_tokens = max_new_tokens
        self.sampler = Sampler(sampler_config or SamplerConfig(), rng=rng)
        self._tracer = tracer

    @property
    def name(self) -> str:
        return "autoregressive"

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        tracer = self.tracer
        record = DecodeRecord()
        prompt_ids = encode_prompt(self.tokenizer, sample)
        eos = self.tokenizer.vocab.eos_id

        with WallTimer() as timer, no_grad(), tracer.span(
            "decode", decoder=self.name, n_prompt_tokens=len(prompt_ids)
        ) as root:
            with tracer.span("prefill") as sp:
                cache, last_logits = self.target.prefill(sample.image[None], prompt_ids[None])
                sp.add_sim_ms(record.charge_sim(self.cost_model.target_prefill(), "prefill"))
                record.count_target_forward()

                token = self.sampler.sample(last_logits[0])
                record.token_ids.append(token)
            while token != eos and len(record.token_ids) < self.max_new_tokens:
                with tracer.span("ar_step") as sp:
                    out = self.target.decode(np.asarray([[token]]), cache)
                    sp.add_sim_ms(record.charge_sim(self.cost_model.target_step(), "ar_step"))
                    record.count_target_forward()
                    token = self.sampler.sample(out.logits.data[0, -1])
                    record.token_ids.append(token)
            root.set_attr("n_tokens", record.n_tokens)
            root.add_sim_ms(record.sim_time_ms)

        record.wall_time_s = timer.elapsed
        record.text = self.tokenizer.decode(record.token_ids)
        return record
