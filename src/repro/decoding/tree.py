"""Tree-structured speculation: candidate trees and single-pass verification.

Linear speculative decoding drafts a γ-token *chain* and discards the whole
tail on the first rejection.  Tree speculation (Spec-LLaVA, arXiv
2509.11961; DREAM, arXiv 2505.19201) instead drafts a candidate *tree* —
top-k branching per step, width adapted by draft-head entropy — and lets
the target verify **every** branch in one forward pass under a
tree-attention mask, so a rejection on one branch can still accept tokens
on a sibling.

This module holds the engine-agnostic pieces:

* :class:`TreeDraft` — the serialized tree: a DFS-preorder token list plus
  a parent-pointer array (``-1`` = child of the anchor token).  The
  serialization invariant ``parents[i] < i`` is what makes the mask
  builder (:func:`repro.nn.ragged.tree_blocked`) a single forward scan
  and keeps a branch-factor-1 tree byte-for-byte equal to the linear
  draft chain.
* :func:`accept_tree` — the greedy acceptance walk: starting at the
  anchor, repeatedly take the target's argmax and descend into the child
  drafted with that exact token; the walk ends at the first position
  where no child matches, and that argmax becomes the correction (or
  bonus) token.  For a chain this reproduces
  :func:`repro.decoding.sampling.speculative_verify` under greedy configs
  exactly.
* :func:`tree_extra_blocked` — the full-width extra attention mask the
  target forward needs: committed-context columns stay open (plain
  causality already admits them) and the trailing feed columns carry the
  ancestor-closure mask, so sibling branches — which may share absolute
  positions — can never attend to each other.

The engine glue (drafting via ``AASDDraftHead.draft_tree``, the
single-forward verify + pointer-only commit/rollback) lives in
``repro.core``; pricing lives in :meth:`CostModel.tree_verify
<repro.decoding.cost_model.CostModel.tree_verify>`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DecodingError
from ..nn.ragged import tree_blocked
from .sampling import SamplerConfig, logits_to_probs

__all__ = [
    "TreeDraft",
    "TreeAcceptOutcome",
    "accept_tree",
    "tree_extra_blocked",
]


@dataclass(frozen=True)
class TreeDraft:
    """A serialized candidate tree produced by the draft head.

    ``tokens[i]`` is node ``i``'s drafted token id; ``parents[i]`` is the
    index of its parent node, with ``-1`` meaning a child of the *anchor*
    (the last committed token, which is fed as row 0 of the verification
    feed so the feed row of node ``i`` is ``i + 1``).  Nodes are listed in
    DFS preorder — ``parents[i] < i`` always — and siblings appear in
    draft-head rank order, so the first child of any parent carries that
    parent's argmax continuation.  ``depths[i]`` is the 1-based root-path
    depth: node ``i`` sits at absolute position ``anchor_position +
    depths[i]``.
    """

    tokens: Tuple[int, ...]
    parents: Tuple[int, ...]
    depths: Tuple[int, ...]

    def __post_init__(self) -> None:
        """Validate the DFS serialization invariants."""
        if not (len(self.tokens) == len(self.parents) == len(self.depths)):
            raise DecodingError(
                f"tree arrays disagree: {len(self.tokens)} tokens, "
                f"{len(self.parents)} parents, {len(self.depths)} depths"
            )
        for i, (p, d) in enumerate(zip(self.parents, self.depths)):
            if not -1 <= p < i:
                raise DecodingError(
                    f"node {i} has parent {p}; DFS preorder requires -1 <= parent < node"
                )
            expected = 1 if p == -1 else self.depths[p] + 1
            if d != expected:
                raise DecodingError(
                    f"node {i} at depth {d}, but its parent implies depth {expected}"
                )

    @property
    def n_nodes(self) -> int:
        """Number of drafted nodes (the anchor is not a node)."""
        return len(self.tokens)

    @property
    def max_depth(self) -> int:
        """Deepest root path in the tree; 0 for an empty tree."""
        return max(self.depths) if self.depths else 0

    @property
    def is_chain(self) -> bool:
        """True when the tree is a linear chain (branch factor 1 throughout)."""
        return all(p == i - 1 for i, p in enumerate(self.parents))

    def children(self) -> Dict[int, List[int]]:
        """Children of each node (and of the anchor, keyed ``-1``), rank-ordered.

        Scanning nodes in index order preserves sibling rank order because
        the DFS construction creates each child before descending into it.
        """
        out: Dict[int, List[int]] = {}
        for i, p in enumerate(self.parents):
            out.setdefault(int(p), []).append(i)
        return out

    def feed_positions(self, anchor_position: int) -> np.ndarray:
        """Absolute positions of the verification feed ``[anchor] + nodes``."""
        return np.asarray(
            [anchor_position] + [anchor_position + d for d in self.depths],
            dtype=np.int64,
        )


@dataclass(frozen=True)
class TreeAcceptOutcome:
    """Result of the greedy acceptance walk over one verified tree."""

    path: Tuple[int, ...]       # node indices of the accepted root path, in order
    accepted: Tuple[int, ...]   # their token ids
    next_token: int             # correction token (or bonus when the walk
                                # ran off the deepest matching node)

    @property
    def n_accepted(self) -> int:
        """Number of drafted tokens that survived verification."""
        return len(self.accepted)

    @property
    def tokens_emitted(self) -> int:
        """Tokens committed by this block: accepted drafts + the next token."""
        return len(self.accepted) + 1


def accept_tree(
    tree: TreeDraft,
    target_logits: np.ndarray,
    config: SamplerConfig,
) -> TreeAcceptOutcome:
    """Walk the longest root path whose tokens match the target's argmax.

    ``target_logits`` is the ``(1 + n_nodes, vocab)`` output of the single
    tree-verification forward, row-aligned with the feed ``[anchor] +
    nodes``: row 0 is the target's continuation of the anchor, row
    ``i + 1`` its continuation of node ``i``.  Starting at the anchor, the
    walk repeatedly computes the greedy target token for the current row
    (via :func:`logits_to_probs`, so non-finite hardening matches the
    linear verify path) and descends into the child drafted with exactly
    that token; when no child matches, that target token is emitted as the
    correction — or, past a leaf, the bonus — token.  Every step of the
    walk is exactly one accepted token, so for a chain tree the outcome
    coincides with greedy :func:`~repro.decoding.sampling.speculative_verify`.

    Only greedy configs are supported: stochastic tree acceptance needs a
    multi-branch residual scheme that is out of scope here, and the engine
    gates tree speculation on ``sampler.config.greedy`` accordingly.
    """
    if not config.greedy:
        raise DecodingError("tree acceptance is defined for greedy configs only")
    target_logits = np.asarray(target_logits)
    if target_logits.ndim != 2 or target_logits.shape[0] != tree.n_nodes + 1:
        raise DecodingError(
            f"need {tree.n_nodes + 1} target logit rows for {tree.n_nodes} "
            f"tree nodes, got {target_logits.shape}"
        )
    children = tree.children()
    path: List[int] = []
    current = -1
    while True:
        row = 0 if current == -1 else current + 1
        probs = logits_to_probs(target_logits[row], config)
        target_token = int(np.argmax(probs))
        next_node: Optional[int] = None
        for child in children.get(current, ()):  # rank order: argmax child first
            if tree.tokens[child] == target_token:
                next_node = child
                break
        if next_node is None:
            return TreeAcceptOutcome(
                path=tuple(path),
                accepted=tuple(tree.tokens[i] for i in path),
                next_token=target_token,
            )
        path.append(next_node)
        current = next_node


def tree_extra_blocked(parents: Sequence[int], n_cache: int) -> np.ndarray:
    """Full-width extra mask for a tree-verification forward.

    Returns a ``(1 + n, n_cache + 1 + n)`` boolean array (``n`` nodes,
    ``n_cache`` committed-context keys) suitable for the model's
    ``extra_blocked`` hook, which ORs it with the causal mask: the
    committed-context columns are all ``False`` (causality already admits
    them — every cached position precedes the anchor) and the trailing
    feed columns carry :func:`repro.nn.ragged.tree_blocked`, so each node
    attends to the committed context, the anchor, and its root-path
    ancestors only.  For a chain the feed part equals the causal rule and
    the OR is a no-op, preserving bitwise identity with linear verify.
    """
    n_feed = len(parents) + 1
    extra = np.zeros((n_feed, n_cache + n_feed), dtype=bool)
    extra[:, n_cache:] = tree_blocked(parents)
    return extra
