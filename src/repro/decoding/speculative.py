"""Generic draft-then-verify speculative decoding with independent drafts.

This is the conventional SD pipeline the paper compares against: a separate
small model (language-only LLaMA or a tiny LLaVA) proposes gamma tokens, the
target verifies them in one parallel forward, and both models keep their own
KV caches in sync.  The AASD engine in :mod:`repro.core.engine` replaces the
independent draft with the KV-reusing speculating module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from ..data.tasks import MultimodalSample
from ..errors import DecodingError
from ..models.llama import MiniLlama
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..obs.tracing import Tracer, get_tracer
from ..tokenizer import WordTokenizer
from ..utils.rng import derive
from ..utils.timing import WallTimer
from .adaptive import FixedGamma, GammaController
from .base import Decoder, encode_prompt
from .cost_model import CostModel
from .metrics import BlockRecord, DecodeRecord
from .sampling import Sampler, SamplerConfig, logits_to_probs, speculative_verify

__all__ = ["IndependentDraft", "LlamaTextDraft", "LlavaDraft", "SpeculativeDecoder"]


class IndependentDraft(ABC):
    """A separate small model proposing draft tokens with its own cache.

    Invariant maintained by the decoder: after :meth:`begin` or
    :meth:`commit`, the draft's cache covers every committed token *except
    the most recent one*, which is always fed at the start of the next
    :meth:`propose` call.
    """

    name: str = "draft"

    @abstractmethod
    def begin(self, sample: MultimodalSample, prompt_ids: np.ndarray) -> None:
        """Prime the draft's own context for a new sample."""

    @abstractmethod
    def propose(
        self, last_token: int, gamma: int, sampler: Sampler
    ) -> Tuple[List[int], np.ndarray]:
        """Draft ``gamma`` tokens; returns (tokens, per-token probs)."""

    @abstractmethod
    def commit(self, n_accepted: int, gamma: int, draft_tokens: List[int]) -> bool:
        """Reconcile the cache after verification.

        Returns True when the draft had to run one extra forward (all
        tokens accepted, so the cache was missing the last drafted token).
        """


class _CachedLMDraft(IndependentDraft):
    """Shared cache logic for drafts backed by a causal-LM cache."""

    def __init__(self) -> None:
        self._cache = None
        self._block_start = 0

    @abstractmethod
    def _prime_cache(self, sample: MultimodalSample, prompt_ids: np.ndarray) -> None:
        """Build ``self._cache`` covering the sample context."""

    @abstractmethod
    def _forward_token(self, token: int) -> np.ndarray:
        """Advance the cache by one token; return next-token logits."""

    def begin(self, sample: MultimodalSample, prompt_ids: np.ndarray) -> None:
        self._prime_cache(sample, prompt_ids)
        self._block_start = self._cache.seq_len

    def propose(
        self, last_token: int, gamma: int, sampler: Sampler
    ) -> Tuple[List[int], np.ndarray]:
        if gamma <= 0:
            raise DecodingError(f"gamma must be positive, got {gamma}")
        self._block_start = self._cache.seq_len
        tokens: List[int] = []
        probs: List[np.ndarray] = []
        token = last_token
        for _ in range(gamma):
            logits = self._forward_token(token)
            probs.append(logits_to_probs(logits, sampler.config))
            token = sampler.sample(logits)
            tokens.append(token)
        return tokens, np.stack(probs)

    def commit(self, n_accepted: int, gamma: int, draft_tokens: List[int]) -> bool:
        # During propose the cache grew by gamma entries, covering
        # [last_committed, d1 .. d_{gamma-1}] — d_gamma was sampled but
        # never fed.
        if n_accepted == gamma:
            # Everything kept; feed d_gamma so the cache covers the full
            # committed prefix before the next block.
            self._forward_token(draft_tokens[-1])
            return True
        # Partial acceptance: keep [last] + the accepted prefix only.
        self._cache.truncate(self._block_start + 1 + n_accepted)
        return False


class LlamaTextDraft(_CachedLMDraft):
    """Language-only draft: never sees the image (Gagrani et al. style)."""

    def __init__(self, model: MiniLlama, label: str = "llama-draft") -> None:
        super().__init__()
        self.model = model
        self.name = label

    def _prime_cache(self, sample: MultimodalSample, prompt_ids: np.ndarray) -> None:
        self._cache = self.model.new_cache()
        self.model.forward(prompt_ids[None], cache=self._cache)

    def _forward_token(self, token: int) -> np.ndarray:
        out = self.model.forward(np.asarray([[token]]), cache=self._cache)
        return out.logits.data[0, -1]


class LlavaDraft(_CachedLMDraft):
    """Tiny multimodal draft with its own vision tower."""

    def __init__(self, model: MiniLlava, label: str = "llava-draft") -> None:
        super().__init__()
        self.model = model
        self.name = label

    def _prime_cache(self, sample: MultimodalSample, prompt_ids: np.ndarray) -> None:
        self._cache, _ = self.model.prefill(sample.image[None], prompt_ids[None])

    def _forward_token(self, token: int) -> np.ndarray:
        out = self.model.decode(np.asarray([[token]]), self._cache)
        return out.logits.data[0, -1]


class SpeculativeDecoder(Decoder):
    """Draft-then-verify decoding with an independent draft model."""

    def __init__(
        self,
        target: MiniLlava,
        draft: IndependentDraft,
        tokenizer: WordTokenizer,
        cost_model: CostModel,
        gamma: int = 3,
        max_new_tokens: int = 64,
        sampler_config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        gamma_controller: Optional[GammaController] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._tracer = tracer
        if gamma <= 0:
            raise DecodingError(f"gamma must be positive, got {gamma}")
        self.target = target
        self.draft = draft
        self.tokenizer = tokenizer
        self.cost_model = cost_model
        self.gamma = gamma
        self.gamma_controller = gamma_controller or FixedGamma(gamma)
        self.max_new_tokens = max_new_tokens
        sampler_config = sampler_config or SamplerConfig()
        self.rng = rng if rng is not None else derive(sampler_config.seed, "speculative")
        self.sampler = Sampler(sampler_config, rng=self.rng)

    @property
    def name(self) -> str:
        return f"sd({self.draft.name})"

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        tracer = self.tracer
        record = DecodeRecord()
        prompt_ids = encode_prompt(self.tokenizer, sample)
        eos = self.tokenizer.vocab.eos_id

        with WallTimer() as timer, no_grad(), tracer.span(
            "decode", decoder=self.name, n_prompt_tokens=len(prompt_ids)
        ) as root:
            with tracer.span("prefill") as sp:
                target_cache, last_logits = self.target.prefill(
                    sample.image[None], prompt_ids[None]
                )
                sp.add_sim_ms(record.charge_sim(self.cost_model.target_prefill(), "prefill"))
                record.count_target_forward()
                self.draft.begin(sample, prompt_ids)
                sp.add_sim_ms(record.charge_sim(self.cost_model.draft_prefill(), "prefill"))

                committed: List[int] = [self.sampler.sample(last_logits[0])]
                self.gamma_controller.reset()

            while committed[-1] != eos and len(committed) < self.max_new_tokens:
                last = committed[-1]
                with tracer.span("draft") as sp:
                    gamma = self.gamma_controller.next_gamma()
                    sp.set_attr("gamma", gamma)
                    sp.set_attr("n_draft", gamma)
                    draft_tokens, draft_probs = self.draft.propose(last, gamma, self.sampler)
                    sp.add_sim_ms(record.charge_sim(
                        gamma * self.cost_model.draft_step(), "draft"
                    ))

                # Verify: one parallel target forward over [last, d1..dγ].
                with tracer.span("verify", n_draft=gamma) as sp:
                    verify_start = target_cache.seq_len
                    feed = np.asarray([[last] + draft_tokens], dtype=np.int64)
                    out = self.target.decode(feed, target_cache)
                    sp.add_sim_ms(record.charge_sim(
                        self.cost_model.target_verify(gamma + 1), "verify"
                    ))
                    record.count_target_forward()

                    outcome = speculative_verify(
                        draft_tokens,
                        draft_probs,
                        out.logits.data[0],
                        self.sampler.config,
                        self.rng,
                    )
                    record.add_block(
                        BlockRecord(
                            n_draft=gamma,
                            n_accepted=outcome.n_accepted,
                            n_emitted=outcome.tokens_emitted,
                        )
                    )
                    sp.set_attr("n_accepted", outcome.n_accepted)
                    self.gamma_controller.update(outcome.n_accepted, gamma)

                    # Target cache keeps [last] + accepted drafts only.
                    target_cache.truncate(verify_start + 1 + outcome.n_accepted)
                    synced = self.draft.commit(outcome.n_accepted, gamma, draft_tokens)
                    if synced:
                        sp.add_sim_ms(record.charge_sim(self.cost_model.draft_step(), "verify"))

                    committed.extend(outcome.accepted)
                    committed.append(outcome.next_token)
                if eos in committed:
                    committed = committed[: committed.index(eos) + 1]
                    break
                if len(committed) >= self.max_new_tokens:
                    committed = committed[: self.max_new_tokens]
                    break

            root.set_attr("n_tokens", len(committed))
            root.add_sim_ms(record.sim_time_ms)

        record.token_ids = committed
        record.wall_time_s = timer.elapsed
        record.text = self.tokenizer.decode(committed)
        return record
