"""Adaptive speculation length (dynamic gamma).

The paper fixes the speculation depth gamma per run (3 or 5).  A natural
extension — explored by follow-up SD work ("Decoding Speculative Decoding",
Yan et al. 2024) — is to adapt gamma online: when recent draft tokens are
being accepted, speculate deeper; after rejections, back off.  This module
provides pluggable controllers that both :class:`SpeculativeDecoder` and
:class:`AASDEngine` accept, plus an ablation benchmark target
(``benchmarks/bench_ablation_gamma.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import DecodingError

__all__ = ["GammaController", "FixedGamma", "AdaptiveGamma"]


class GammaController(ABC):
    """Chooses the speculation depth for each draft-then-verify block."""

    @abstractmethod
    def next_gamma(self) -> int:
        """Depth to use for the upcoming block (>= 1)."""

    @abstractmethod
    def update(self, n_accepted: int, gamma: int) -> None:
        """Feed back the verification outcome of the last block."""

    def reset(self) -> None:
        """Called at the start of each new generation."""


class FixedGamma(GammaController):
    """The paper's setting: a constant depth."""

    def __init__(self, gamma: int) -> None:
        if gamma < 1:
            raise DecodingError(f"gamma must be >= 1, got {gamma}")
        self.gamma = gamma

    def next_gamma(self) -> int:
        return self.gamma

    def update(self, n_accepted: int, gamma: int) -> None:  # noqa: D102 - no state
        pass

    def __repr__(self) -> str:
        return f"FixedGamma({self.gamma})"


class AdaptiveGamma(GammaController):
    """AIMD-style depth control on an EWMA of the acceptance rate.

    Depth increases by one while the smoothed acceptance rate is above
    ``raise_threshold`` (everything is being accepted — drafting is cheap
    relative to wasted verify slots), and drops by one when it falls below
    ``lower_threshold``.
    """

    def __init__(
        self,
        initial_gamma: int = 3,
        min_gamma: int = 1,
        max_gamma: int = 8,
        raise_threshold: float = 0.8,
        lower_threshold: float = 0.4,
        smoothing: float = 0.7,
    ) -> None:
        if not 1 <= min_gamma <= initial_gamma <= max_gamma:
            raise DecodingError(
                f"need 1 <= min {min_gamma} <= initial {initial_gamma} <= max {max_gamma}"
            )
        if not 0.0 <= lower_threshold < raise_threshold <= 1.0:
            raise DecodingError("thresholds must satisfy 0 <= lower < raise <= 1")
        if not 0.0 <= smoothing < 1.0:
            raise DecodingError(f"smoothing must be in [0, 1), got {smoothing}")
        self.initial_gamma = initial_gamma
        self.min_gamma = min_gamma
        self.max_gamma = max_gamma
        self.raise_threshold = raise_threshold
        self.lower_threshold = lower_threshold
        self.smoothing = smoothing
        self.reset()

    def reset(self) -> None:
        self._gamma = self.initial_gamma
        self._ewma = 0.5

    def next_gamma(self) -> int:
        return self._gamma

    def update(self, n_accepted: int, gamma: int) -> None:
        if gamma <= 0:
            raise DecodingError(f"reported gamma must be positive, got {gamma}")
        rate = n_accepted / gamma
        self._ewma = self.smoothing * self._ewma + (1.0 - self.smoothing) * rate
        if self._ewma > self.raise_threshold and self._gamma < self.max_gamma:
            self._gamma += 1
        elif self._ewma < self.lower_threshold and self._gamma > self.min_gamma:
            self._gamma -= 1

    @property
    def acceptance_estimate(self) -> float:
        return self._ewma

    def __repr__(self) -> str:
        return (
            f"AdaptiveGamma(gamma={self._gamma}, range=[{self.min_gamma}, "
            f"{self.max_gamma}], ewma={self._ewma:.2f})"
        )
