"""Decoder interface shared by the AR baseline, generic SD, and AASD."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from ..data.tasks import MultimodalSample
from ..tokenizer import WordTokenizer
from .metrics import DecodeRecord

__all__ = ["Decoder", "encode_prompt", "trim_at_eos"]


def encode_prompt(tokenizer: WordTokenizer, sample: MultimodalSample) -> np.ndarray:
    """Canonical prompt encoding: ``[bos, prompt tokens...]``."""
    return np.asarray(
        [tokenizer.vocab.bos_id] + tokenizer.encode(sample.prompt), dtype=np.int64
    )


def trim_at_eos(token_ids: List[int], eos_id: int) -> List[int]:
    """Cut the sequence after the first eos (inclusive)."""
    if eos_id in token_ids:
        return token_ids[: token_ids.index(eos_id) + 1]
    return token_ids


class Decoder(ABC):
    """Generates a response for one multimodal sample, with instrumentation."""

    @abstractmethod
    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        """Run one full generation and return the measured record."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in tables ('autoregressive', 'ours', ...)."""
