"""Token sampling and lossless speculative accept/reject.

Implements greedy / temperature / top-k / top-p sampling plus the
Leviathan et al. (2023) speculative-sampling rule used by the verify step:
the combined draft-then-verify procedure provably samples from the target
distribution, and degenerates to exact prefix matching under greedy
decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DecodingError
from ..utils.rng import derive

__all__ = ["SamplerConfig", "Sampler", "logits_to_probs", "speculative_verify", "VerifyOutcome"]


@dataclass(frozen=True)
class SamplerConfig:
    """How tokens are drawn from a distribution."""

    greedy: bool = True
    temperature: float = 1.0
    top_k: int = 0        # 0 disables
    top_p: float = 1.0    # 1.0 disables
    seed: int = 0         # root seed for the sampler's RNG stream

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise DecodingError(f"temperature must be positive, got {self.temperature}")
        if self.top_k < 0:
            raise DecodingError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 < self.top_p <= 1.0:
            raise DecodingError(f"top_p must be in (0, 1], got {self.top_p}")


def logits_to_probs(logits: np.ndarray, config: SamplerConfig) -> np.ndarray:
    """Map a logits row to the sampling distribution the config implies.

    Under greedy decoding this is a one-hot argmax distribution, so the
    speculative accept rule reduces to exact token matching.

    Non-finite logits are hardened: NaN/-Inf/+Inf entries are masked to
    ``-inf`` (never sampled); a row with no finite entry at all raises
    :class:`DecodingError`, which the AASD engine treats as a draft fault.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    finite = np.isfinite(logits)
    if not finite.all():
        if not finite.any():
            raise DecodingError("logits contain no finite values")
        logits = np.where(finite, logits, -np.inf)
    if config.greedy:
        probs = np.zeros_like(logits)
        probs[int(np.argmax(logits))] = 1.0
        return probs
    scaled = logits / config.temperature
    scaled = scaled - scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    if config.top_k > 0 and config.top_k < probs.size:
        cutoff = np.sort(probs)[-config.top_k]
        probs = np.where(probs >= cutoff, probs, 0.0)
        probs /= probs.sum()
    if config.top_p < 1.0:
        order = np.argsort(probs)[::-1]
        cumulative = np.cumsum(probs[order])
        keep_count = int(np.searchsorted(cumulative, config.top_p) + 1)
        mask = np.zeros_like(probs, dtype=bool)
        mask[order[:keep_count]] = True
        probs = np.where(mask, probs, 0.0)
        probs /= probs.sum()
    return probs


class Sampler:
    """Stateful sampler owning its RNG stream.

    Without an explicit ``rng`` the stream is derived from
    ``config.seed`` — sampled decoding is reproducible by construction,
    never seeded from OS entropy.
    """

    def __init__(self, config: SamplerConfig, rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self.rng = rng if rng is not None else derive(config.seed, "sampler")

    def sample(self, logits: np.ndarray) -> int:
        probs = logits_to_probs(logits, self.config)
        if self.config.greedy:
            return int(np.argmax(probs))
        return int(self.rng.choice(probs.size, p=probs))


@dataclass(frozen=True)
class VerifyOutcome:
    """Result of verifying one block of draft tokens."""

    accepted: Tuple[int, ...]   # draft tokens that survived, in order
    next_token: int             # correction token (or bonus if all accepted)
    all_accepted: bool

    @property
    def n_accepted(self) -> int:
        return len(self.accepted)

    @property
    def tokens_emitted(self) -> int:
        """Tokens produced by this block: accepted drafts + the next token."""
        return len(self.accepted) + 1


def speculative_verify(
    draft_tokens: List[int],
    draft_probs: np.ndarray,
    target_logits: np.ndarray,
    config: SamplerConfig,
    rng: np.random.Generator,
) -> VerifyOutcome:
    """Accept/reject a block of draft tokens against target logits.

    Parameters
    ----------
    draft_tokens:
        The gamma proposed token ids.
    draft_probs:
        ``(gamma, vocab)`` draft distributions each token was drawn from.
    target_logits:
        ``(gamma + 1, vocab)`` target logits: row ``i`` is the target's
        distribution for draft position ``i``; the final row is the bonus
        distribution used when every draft token is accepted.
    config:
        Sampling configuration (shared by draft and target for losslessness).
    rng:
        Random stream for accept tests and residual sampling.

    Returns the accepted prefix and the next committed token.  Under greedy
    configs this is exact prefix matching against the target argmax.
    """
    gamma = len(draft_tokens)
    target_logits = np.asarray(target_logits, dtype=np.float64)
    if target_logits.shape[0] != gamma + 1:
        raise DecodingError(
            f"need {gamma + 1} target logit rows for {gamma} draft tokens, "
            f"got {target_logits.shape[0]}"
        )
    draft_probs = np.asarray(draft_probs, dtype=np.float64)
    if draft_probs.shape[0] != gamma:
        raise DecodingError(
            f"need {gamma} draft prob rows, got {draft_probs.shape[0]}"
        )

    accepted: List[int] = []
    for i, token in enumerate(draft_tokens):
        target_probs = logits_to_probs(target_logits[i], config)
        if config.greedy:
            if int(np.argmax(target_probs)) == token:
                accepted.append(token)
                continue
            return VerifyOutcome(tuple(accepted), int(np.argmax(target_probs)), False)
        row = draft_probs[i]
        if not (np.isfinite(row).all() and 0.0 < float(row.sum()) < np.inf):
            # Corrupt draft distribution (NaN/Inf or degenerate mass):
            # discard the proposal and emit a pure target sample, which is
            # lossless no matter what the drafter produced.
            next_token = int(rng.choice(target_probs.size, p=target_probs))
            return VerifyOutcome(tuple(accepted), next_token, False)
        p_target = target_probs[token]
        p_draft = row[token]
        if p_draft <= 0.0 or rng.random() < min(1.0, p_target / p_draft):
            if p_target <= 0.0 and p_draft <= 0.0:
                # Token impossible under both: reject via the residual below.
                pass
            else:
                accepted.append(token)
                continue
        residual = np.maximum(target_probs - draft_probs[i], 0.0)
        total = residual.sum()
        if total <= 0.0:
            # Distributions identical: any target sample is valid.
            next_token = int(rng.choice(target_probs.size, p=target_probs))
        else:
            next_token = int(rng.choice(residual.size, p=residual / total))
        return VerifyOutcome(tuple(accepted), next_token, False)

    bonus_probs = logits_to_probs(target_logits[gamma], config)
    if config.greedy:
        bonus = int(np.argmax(bonus_probs))
    else:
        bonus = int(rng.choice(bonus_probs.size, p=bonus_probs))
    return VerifyOutcome(tuple(accepted), bonus, True)
