"""Decoding framework: AR baseline, speculative decoding, metrics, costs."""

from .adaptive import AdaptiveGamma, FixedGamma, GammaController
from .autoregressive import AutoregressiveDecoder
from .base import Decoder, encode_prompt, trim_at_eos
from .cost_model import PROFILES, CostModel, CostProfile, get_profile
from .metrics import BlockRecord, DecodeRecord, SpeedupReport, aggregate_metrics
from .sampling import (
    Sampler,
    SamplerConfig,
    VerifyOutcome,
    logits_to_probs,
    speculative_verify,
)
from .speculative import (
    IndependentDraft,
    LlamaTextDraft,
    LlavaDraft,
    SpeculativeDecoder,
)
from .tree import TreeAcceptOutcome, TreeDraft, accept_tree, tree_extra_blocked

__all__ = [
    "GammaController",
    "FixedGamma",
    "AdaptiveGamma",
    "Decoder",
    "encode_prompt",
    "trim_at_eos",
    "AutoregressiveDecoder",
    "SpeculativeDecoder",
    "IndependentDraft",
    "LlamaTextDraft",
    "LlavaDraft",
    "CostModel",
    "CostProfile",
    "get_profile",
    "PROFILES",
    "BlockRecord",
    "DecodeRecord",
    "SpeedupReport",
    "aggregate_metrics",
    "Sampler",
    "SamplerConfig",
    "VerifyOutcome",
    "logits_to_probs",
    "speculative_verify",
    "TreeDraft",
    "TreeAcceptOutcome",
    "accept_tree",
    "tree_extra_blocked",
]
