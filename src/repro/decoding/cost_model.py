"""Calibrated latency model for simulated wall-clock metrics.

Why a cost model
----------------
The paper measures walltime speedup of LLaVA-7B/13B on GPU hardware, where
(1) a single decode step of a 7B target costs ~31 ms, (2) a small draft step
costs a ~4x smaller but far-from-proportional amount (kernel-launch and
memory-bandwidth floors), and (3) verifying gamma tokens in one forward
costs much less than gamma sequential steps (parallel utilisation).  None
of these ratios hold for 1M-parameter numpy models on a CPU, so charging
real wall time would distort every headline number.  Instead, decoders
charge a :class:`SimulatedClock` through this cost model, and raw Python
wall time is reported alongside as a secondary column.

Calibration
-----------
Constants are solved from the paper's own Table 1/2 aggregates.  With the
target's one-token decode step as the unit cost:

* ``omega = tau / block_cost`` and ``block_cost = gamma * c_draft + c_verify``
  across Table 1 rows gives ``c_draft ~= 0.24-0.28`` and
  ``c_verify(gamma) ~= 0.40 + 0.05 * gamma``;
* autoregressive decode speed is ``delta / omega ~= 31.5 tok/s`` (7B) and
  ``31.7 tok/s`` (13B), fixing the absolute step time.

The AASD draft head is cheaper per step than a 112M two-tower draft but pays
per attended KV token, which is what the Vision KV Projector ablation
(Table 2) measures: without compression its per-step cost grows with the
uncompressed vision KV length.

Batched serving
---------------
A GPU decode step is memory-bound: the weights are streamed once per
forward regardless of how many sequences ride in the batch, so a batched
forward over ``B`` sequences costs far less than ``B`` solo forwards.  The
``batched_*`` methods price one such forward: the solo base cost is paid
once, each *additional* sequence adds a small ``batch_per_seq_frac``
increment (compute growing with batch size), and per-token / per-KV terms
are summed over the whole batch because that work genuinely scales.  With
one sequence they reduce exactly to the solo prices, so a batch-of-one
server round costs the same as sequential decoding.  The continuous-
batching scheduler (:mod:`repro.serving`) charges these to the *server*
clock, while each request's own :class:`~repro.decoding.metrics.DecodeRecord`
keeps solo-priced attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence

from ..errors import ConfigError

__all__ = ["CostProfile", "CostModel", "get_profile", "PROFILES"]


@dataclass(frozen=True)
class CostProfile:
    """All latency constants, expressed relative to one target decode step."""

    name: str
    target_step_ms: float            # one autoregressive target step
    prefill_ms: float                # target prefill (image + prompt)
    verify_base_frac: float          # parallel-verify fixed cost
    verify_per_token_frac: float     # parallel-verify per-token cost
    draft_step_frac: float           # independent 112M draft, one step
    draft_prefill_frac: float        # independent draft, own context prefill
    aasd_step_frac: float            # AASD head step at reference KV length
    aasd_per_kv_token_frac: float    # AASD extra cost per attended KV token
    aasd_reference_kv: int           # KV length included in aasd_step_frac
    projector_ms: float              # one-off KV projector application
    # Batched-serving constants (see "Batched serving" in the module
    # docstring): marginal cost of each additional sequence sharing one
    # forward, as a fraction of the respective solo base cost.
    batch_per_seq_frac: float = 0.05        # target forward, per extra sequence
    draft_batch_per_seq_frac: float = 0.02  # AASD head step, per extra sequence
    prefill_batch_frac: float = 0.60        # target prefill, per extra request

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on nonsensical constants."""
        numeric = (
            self.target_step_ms,
            self.prefill_ms,
            self.verify_base_frac,
            self.verify_per_token_frac,
            self.draft_step_frac,
            self.draft_prefill_frac,
            self.aasd_step_frac,
            self.aasd_per_kv_token_frac,
            self.projector_ms,
            self.batch_per_seq_frac,
            self.draft_batch_per_seq_frac,
            self.prefill_batch_frac,
        )
        if any(v < 0 for v in numeric):
            raise ConfigError(f"cost profile {self.name!r} has negative constants")
        if self.target_step_ms <= 0:
            raise ConfigError("target_step_ms must be positive")


#: 7B calibration: 31.5 tok/s autoregressive; see module docstring.
_SIM_7B = CostProfile(
    name="sim-7b",
    target_step_ms=1000.0 / 31.5,
    prefill_ms=2.0 * (1000.0 / 31.5),
    verify_base_frac=0.40,
    verify_per_token_frac=0.05,
    draft_step_frac=0.25,
    draft_prefill_frac=0.50,
    aasd_step_frac=0.225,
    aasd_per_kv_token_frac=0.0009,
    aasd_reference_kv=48,
    projector_ms=0.20 * (1000.0 / 31.5),
)

#: 13B calibration: 31.7 tok/s autoregressive; the same relative draft cost
#: against a pricier target step is what lifts omega slightly, as in Table 1.
_SIM_13B = replace(
    _SIM_7B,
    name="sim-13b",
    target_step_ms=1000.0 / 31.7,
    prefill_ms=2.0 * (1000.0 / 31.7),
    draft_step_frac=0.235,
    aasd_step_frac=0.21,
    projector_ms=0.20 * (1000.0 / 31.7),
)

PROFILES: Dict[str, CostProfile] = {p.name: p for p in (_SIM_7B, _SIM_13B)}


def get_profile(name: str) -> CostProfile:
    if name not in PROFILES:
        raise ConfigError(f"unknown cost profile {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]


class CostModel:
    """Charges simulated milliseconds for each decoding operation."""

    def __init__(self, profile: CostProfile) -> None:
        profile.validate()
        self.profile = profile

    # -- target ---------------------------------------------------------
    def target_prefill(self) -> float:
        return self.profile.prefill_ms

    def target_step(self) -> float:
        return self.profile.target_step_ms

    def target_verify(self, n_tokens: int) -> float:
        """One parallel forward over ``n_tokens`` new tokens."""
        if n_tokens <= 0:
            raise ConfigError(f"verify needs at least one token, got {n_tokens}")
        frac = self.profile.verify_base_frac + self.profile.verify_per_token_frac * n_tokens
        return frac * self.profile.target_step_ms

    def tree_verify(self, n_rows: int) -> float:
        """One tree-verification forward feeding ``n_rows`` rows.

        ``n_rows`` is the anchor plus every tree node (``1 + n_nodes``) —
        the billed quantity is the *tree-node count*, not ``gamma * B``:
        every fed row is billed exactly once whether its branch is later
        accepted or rolled back, and rollback itself is free (rejected
        rows were never written to the cache, so there is nothing to
        undo).  A chain tree of depth γ feeds ``gamma + 1`` rows and costs
        exactly :meth:`target_verify` of ``gamma + 1`` — the same float —
        which keeps branch-factor-1 tree decoding cost-identical to
        linear speculation.
        """
        if n_rows <= 0:
            raise ConfigError(f"tree verify needs at least one row, got {n_rows}")
        return self.target_verify(n_rows)

    # -- independent draft (FT/DT-LLaMA, FT/DT-LLaVA) --------------------
    def draft_prefill(self) -> float:
        return self.profile.draft_prefill_frac * self.profile.target_step_ms

    def draft_step(self) -> float:
        return self.profile.draft_step_frac * self.profile.target_step_ms

    def draft_sync(self, n_tokens: int) -> float:
        """Draft-side parallel forward over accepted tokens (cache sync)."""
        if n_tokens <= 0:
            return 0.0
        frac = self.profile.draft_step_frac * (0.5 + 0.1 * n_tokens)
        return frac * self.profile.target_step_ms

    # -- AASD speculating module -----------------------------------------
    def projector(self) -> float:
        return self.profile.projector_ms

    def aasd_step(self, kv_len: int) -> float:
        """One draft-head step attending over ``kv_len`` hybrid KV tokens."""
        if kv_len < 0:
            raise ConfigError(f"kv_len must be >= 0, got {kv_len}")
        extra = max(0, kv_len - self.profile.aasd_reference_kv)
        frac = self.profile.aasd_step_frac + self.profile.aasd_per_kv_token_frac * extra
        return frac * self.profile.target_step_ms

    # -- batched serving (one forward shared by several requests) ---------
    def batched_prefill(self, n_requests: int) -> float:
        """One batched target prefill over ``n_requests`` admitted requests.

        The first request pays the full solo prefill; each additional one
        adds ``prefill_batch_frac`` of it (prefill is compute-bound, so
        batching amortises less than decode steps do).
        """
        if n_requests <= 0:
            raise ConfigError(f"need at least one request, got {n_requests}")
        scale = 1.0 + self.profile.prefill_batch_frac * (n_requests - 1)
        return scale * self.profile.prefill_ms

    def batched_verify(self, feed_sizes: Sequence[int]) -> float:
        """One batched parallel target forward verifying several sequences.

        ``feed_sizes`` holds the number of tokens each sequence feeds
        (``gamma + 1`` for a verify, ``1`` for a fallback step riding the
        same forward).  The solo verify base is paid once, per-token cost
        is summed over the batch, and each extra sequence adds
        ``batch_per_seq_frac``.  ``batched_verify([n])`` equals
        :meth:`target_verify` of ``n``.
        """
        sizes = list(feed_sizes)
        if not sizes:
            raise ConfigError("batched verify needs at least one sequence")
        if any(n <= 0 for n in sizes):
            raise ConfigError(f"verify feeds must be positive, got {sizes}")
        frac = (
            self.profile.verify_base_frac
            + self.profile.verify_per_token_frac * sum(sizes)
            + self.profile.batch_per_seq_frac * (len(sizes) - 1)
        )
        return frac * self.profile.target_step_ms

    def batched_tree_verify(self, feed_sizes: Sequence[int]) -> float:
        """One batched tree-verification forward over several requests.

        ``feed_sizes`` holds each request's fed row count (``1 + n_nodes``
        for a tree, ``1`` for a fallback step riding the same forward).
        As with :meth:`tree_verify`, billing is per fed row — every tree
        node is charged exactly once regardless of acceptance, rollback is
        free — so the price is exactly :meth:`batched_verify` of the same
        sizes and a batch of chain trees costs the same float as the
        packed linear round it replaces.
        """
        return self.batched_verify(feed_sizes)

    def batched_aasd_step(self, kv_lens: Sequence[int]) -> float:
        """One batched draft-head step across several sessions' hybrid caches.

        ``kv_lens`` holds each session's attended hybrid-KV length.  The
        solo step base is paid once, per-KV-token excess is summed, and
        each extra session adds ``draft_batch_per_seq_frac``.
        ``batched_aasd_step([kv])`` equals :meth:`aasd_step` of ``kv``.
        """
        lens = list(kv_lens)
        if not lens:
            raise ConfigError("batched draft step needs at least one session")
        if any(kv < 0 for kv in lens):
            raise ConfigError(f"kv lengths must be >= 0, got {lens}")
        ref = self.profile.aasd_reference_kv
        extra = sum(max(0, kv - ref) for kv in lens)
        frac = (
            self.profile.aasd_step_frac
            + self.profile.aasd_per_kv_token_frac * extra
            + self.profile.draft_batch_per_seq_frac * (len(lens) - 1)
        )
        return frac * self.profile.target_step_ms
