"""Calibrated latency model for simulated wall-clock metrics.

Why a cost model
----------------
The paper measures walltime speedup of LLaVA-7B/13B on GPU hardware, where
(1) a single decode step of a 7B target costs ~31 ms, (2) a small draft step
costs a ~4x smaller but far-from-proportional amount (kernel-launch and
memory-bandwidth floors), and (3) verifying gamma tokens in one forward
costs much less than gamma sequential steps (parallel utilisation).  None
of these ratios hold for 1M-parameter numpy models on a CPU, so charging
real wall time would distort every headline number.  Instead, decoders
charge a :class:`SimulatedClock` through this cost model, and raw Python
wall time is reported alongside as a secondary column.

Calibration
-----------
Constants are solved from the paper's own Table 1/2 aggregates.  With the
target's one-token decode step as the unit cost:

* ``omega = tau / block_cost`` and ``block_cost = gamma * c_draft + c_verify``
  across Table 1 rows gives ``c_draft ~= 0.24-0.28`` and
  ``c_verify(gamma) ~= 0.40 + 0.05 * gamma``;
* autoregressive decode speed is ``delta / omega ~= 31.5 tok/s`` (7B) and
  ``31.7 tok/s`` (13B), fixing the absolute step time.

The AASD draft head is cheaper per step than a 112M two-tower draft but pays
per attended KV token, which is what the Vision KV Projector ablation
(Table 2) measures: without compression its per-step cost grows with the
uncompressed vision KV length.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import ConfigError

__all__ = ["CostProfile", "CostModel", "get_profile", "PROFILES"]


@dataclass(frozen=True)
class CostProfile:
    """All latency constants, expressed relative to one target decode step."""

    name: str
    target_step_ms: float            # one autoregressive target step
    prefill_ms: float                # target prefill (image + prompt)
    verify_base_frac: float          # parallel-verify fixed cost
    verify_per_token_frac: float     # parallel-verify per-token cost
    draft_step_frac: float           # independent 112M draft, one step
    draft_prefill_frac: float        # independent draft, own context prefill
    aasd_step_frac: float            # AASD head step at reference KV length
    aasd_per_kv_token_frac: float    # AASD extra cost per attended KV token
    aasd_reference_kv: int           # KV length included in aasd_step_frac
    projector_ms: float              # one-off KV projector application

    def validate(self) -> None:
        numeric = (
            self.target_step_ms,
            self.prefill_ms,
            self.verify_base_frac,
            self.verify_per_token_frac,
            self.draft_step_frac,
            self.draft_prefill_frac,
            self.aasd_step_frac,
            self.aasd_per_kv_token_frac,
            self.projector_ms,
        )
        if any(v < 0 for v in numeric):
            raise ConfigError(f"cost profile {self.name!r} has negative constants")
        if self.target_step_ms <= 0:
            raise ConfigError("target_step_ms must be positive")


#: 7B calibration: 31.5 tok/s autoregressive; see module docstring.
_SIM_7B = CostProfile(
    name="sim-7b",
    target_step_ms=1000.0 / 31.5,
    prefill_ms=2.0 * (1000.0 / 31.5),
    verify_base_frac=0.40,
    verify_per_token_frac=0.05,
    draft_step_frac=0.25,
    draft_prefill_frac=0.50,
    aasd_step_frac=0.225,
    aasd_per_kv_token_frac=0.0009,
    aasd_reference_kv=48,
    projector_ms=0.20 * (1000.0 / 31.5),
)

#: 13B calibration: 31.7 tok/s autoregressive; the same relative draft cost
#: against a pricier target step is what lifts omega slightly, as in Table 1.
_SIM_13B = replace(
    _SIM_7B,
    name="sim-13b",
    target_step_ms=1000.0 / 31.7,
    prefill_ms=2.0 * (1000.0 / 31.7),
    draft_step_frac=0.235,
    aasd_step_frac=0.21,
    projector_ms=0.20 * (1000.0 / 31.7),
)

PROFILES: Dict[str, CostProfile] = {p.name: p for p in (_SIM_7B, _SIM_13B)}


def get_profile(name: str) -> CostProfile:
    if name not in PROFILES:
        raise ConfigError(f"unknown cost profile {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]


class CostModel:
    """Charges simulated milliseconds for each decoding operation."""

    def __init__(self, profile: CostProfile) -> None:
        profile.validate()
        self.profile = profile

    # -- target ---------------------------------------------------------
    def target_prefill(self) -> float:
        return self.profile.prefill_ms

    def target_step(self) -> float:
        return self.profile.target_step_ms

    def target_verify(self, n_tokens: int) -> float:
        """One parallel forward over ``n_tokens`` new tokens."""
        if n_tokens <= 0:
            raise ConfigError(f"verify needs at least one token, got {n_tokens}")
        frac = self.profile.verify_base_frac + self.profile.verify_per_token_frac * n_tokens
        return frac * self.profile.target_step_ms

    # -- independent draft (FT/DT-LLaMA, FT/DT-LLaVA) --------------------
    def draft_prefill(self) -> float:
        return self.profile.draft_prefill_frac * self.profile.target_step_ms

    def draft_step(self) -> float:
        return self.profile.draft_step_frac * self.profile.target_step_ms

    def draft_sync(self, n_tokens: int) -> float:
        """Draft-side parallel forward over accepted tokens (cache sync)."""
        if n_tokens <= 0:
            return 0.0
        frac = self.profile.draft_step_frac * (0.5 + 0.1 * n_tokens)
        return frac * self.profile.target_step_ms

    # -- AASD speculating module -----------------------------------------
    def projector(self) -> float:
        return self.profile.projector_ms

    def aasd_step(self, kv_len: int) -> float:
        """One draft-head step attending over ``kv_len`` hybrid KV tokens."""
        if kv_len < 0:
            raise ConfigError(f"kv_len must be >= 0, got {kv_len}")
        extra = max(0, kv_len - self.profile.aasd_reference_kv)
        frac = self.profile.aasd_step_frac + self.profile.aasd_per_kv_token_frac * extra
        return frac * self.profile.target_step_ms
