"""Per-layer KV cache with modality segments, backed by zero-copy arenas.

The cache stores post-RoPE key/value arrays per layer, plus the absolute
positions of the cached tokens and the boundaries of the vision / prompt /
generated segments.  AASD consumes the *last layer's* slice, and the
Figure 4 ablations mask individual segments.

Storage is an :class:`~repro.utils.arena.Arena` pair per layer (amortized
doubling along the token axis), so the decode hot path never pays O(T)
reallocation:

* ``append`` memcpys only the new tokens into preallocated slack,
* ``truncate`` (rejected-draft rollback) is a pointer decrement,
* ``layer``/``last_layer``/``positions`` return cached zero-copy views,
  identity-stable until the next mutation,
* ``clone`` is copy-on-write: O(1) to take, and nobody pays a deep copy
  until a side actually writes into shared storage (the old
  implementation eagerly copied every layer; see
  :class:`repro.core.reference.ReferenceKVCache` for that executable
  spec, and ``docs/performance.md`` for the design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..utils.arena import Arena, ArenaStats

__all__ = ["KVCache", "Segments"]


@dataclass(frozen=True)
class Segments:
    """Token index ranges (half-open) of the modality segments."""

    vision: Tuple[int, int]
    prompt: Tuple[int, int]

    @property
    def n_vision(self) -> int:
        return self.vision[1] - self.vision[0]

    @property
    def n_prompt(self) -> int:
        return self.prompt[1] - self.prompt[0]

    @property
    def prefix_len(self) -> int:
        return self.prompt[1]


class KVCache:
    """Append/truncate KV store for one generation session.

    Arrays have shape ``(B, H, T, Dh)`` per layer.  Appending grows T;
    truncation (used when draft tokens are rejected) shrinks it.  All data
    is plain numpy — the cache is an inference-side object and never carries
    gradients.

    Reads alias arena storage: arrays returned by :meth:`layer` /
    :meth:`last_layer` and the :attr:`positions` view are valid until the
    next ``append``/``truncate``; copy them to hold across mutations.
    """

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.n_layers = n_layers
        self._stats = ArenaStats()
        self._keys: List[Optional[Arena]] = [None] * n_layers
        self._values: List[Optional[Arena]] = [None] * n_layers
        self._positions = Arena((0,), axis=0, dtype=np.int64, stats=self._stats)
        self.segments: Optional[Segments] = None

    # ------------------------------------------------------------------
    @property
    def seq_len(self) -> int:
        """Tokens currently cached (0 when empty)."""
        return 0 if self._keys[0] is None else len(self._keys[0])

    @property
    def batch_size(self) -> int:
        """Leading batch dimension of the cached arrays."""
        if self._keys[0] is None:
            raise ShapeError("cache is empty")
        return self._keys[0].view().shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Absolute positions of the cached tokens (zero-copy view)."""
        return self._positions.view()

    def layer(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (K, V) views for layer ``idx`` (no copy)."""
        k, v = self._keys[idx], self._values[idx]
        if k is None or v is None:
            raise ShapeError(f"layer {idx} cache is empty")
        return k.view(), v.view()

    def last_layer(self) -> Tuple[np.ndarray, np.ndarray]:
        """The slice AASD's speculating module consumes."""
        return self.layer(self.n_layers - 1)

    # ------------------------------------------------------------------
    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new-token K/V ``(B, H, Tnew, Dh)`` to one layer."""
        k = np.asarray(k)
        v = np.asarray(v)
        if k.shape != v.shape:
            raise ShapeError(f"K/V shape mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4:
            raise ShapeError(f"expected (B, H, T, Dh) K/V, got {k.shape}")
        arena_k = self._keys[layer]
        if arena_k is None:
            item = (k.shape[0], k.shape[1], 0, k.shape[3])
            arena_k = Arena(item, axis=2, dtype=k.dtype, stats=self._stats)
            arena_v = Arena(item, axis=2, dtype=v.dtype, stats=self._stats)
            self._keys[layer] = arena_k
            self._values[layer] = arena_v
        else:
            arena_v = self._values[layer]
        try:
            arena_k.append(k)
            arena_v.append(v)
        except ShapeError as exc:
            raise ShapeError(
                f"append shape {k.shape} incompatible with cache "
                f"(B={arena_k.view().shape[0]}, H={arena_k.view().shape[1]}, "
                f"T={len(arena_k)}, Dh={arena_k.view().shape[3]})"
            ) from exc

    def extend_positions(self, positions: np.ndarray) -> None:
        """Record absolute positions for tokens just appended to all layers."""
        self._positions.append(np.asarray(positions, dtype=np.int64))

    def truncate(self, new_len: int) -> None:
        """Drop cached entries beyond ``new_len`` (rejected draft rollback).

        With arena storage this is a pointer decrement per layer — no
        array data moves.
        """
        if new_len > self.seq_len:
            raise ShapeError(f"cannot truncate cache of len {self.seq_len} to {new_len}")
        if new_len == self.seq_len:
            return
        prefix = self.segments.prefix_len if self.segments is not None else 0
        if new_len < prefix:
            raise ShapeError(
                f"truncation to {new_len} would cut into the prefill prefix ({prefix})"
            )
        for i in range(self.n_layers):
            if self._keys[i] is not None:
                self._keys[i].truncate(new_len)
                self._values[i].truncate(new_len)
        self._positions.truncate(min(new_len, len(self._positions)))

    def set_segments(self, n_vision: int, n_prompt: int) -> None:
        """Mark the vision/prompt boundaries right after prefill."""
        self.segments = Segments(vision=(0, n_vision), prompt=(n_vision, n_vision + n_prompt))

    # ------------------------------------------------------------------
    def next_position(self) -> int:
        """Absolute position the next token should occupy."""
        pos = self._positions.view()
        return 0 if pos.size == 0 else int(pos[-1]) + 1

    def arena_stats(self) -> ArenaStats:
        """Copy/growth accounting aggregated over this cache's arenas."""
        return self._stats

    def clone(self) -> "KVCache":
        """Copy-on-write snapshot (verification rollouts, what-if decoding).

        O(1): every layer arena is forked, sharing storage until one side
        writes.  The old implementation deep-copied all layers eagerly,
        even though AASD only ever reads the last layer's slice.
        """
        out = KVCache(self.n_layers)
        out._keys = [None if k is None else k.fork(out._stats) for k in self._keys]
        out._values = [None if v is None else v.fork(out._stats) for v in self._values]
        out._positions = self._positions.fork(out._stats)
        out.segments = self.segments
        return out
