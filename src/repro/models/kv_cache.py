"""Per-layer KV cache with modality segments.

The cache stores post-RoPE key/value arrays per layer, plus the absolute
positions of the cached tokens and the boundaries of the vision / prompt /
generated segments.  AASD consumes the *last layer's* slice, and the
Figure 4 ablations mask individual segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError

__all__ = ["KVCache", "Segments"]


@dataclass(frozen=True)
class Segments:
    """Token index ranges (half-open) of the modality segments."""

    vision: Tuple[int, int]
    prompt: Tuple[int, int]

    @property
    def n_vision(self) -> int:
        return self.vision[1] - self.vision[0]

    @property
    def n_prompt(self) -> int:
        return self.prompt[1] - self.prompt[0]

    @property
    def prefix_len(self) -> int:
        return self.prompt[1]


class KVCache:
    """Append/truncate KV store for one generation session.

    Arrays have shape ``(B, H, T, Dh)`` per layer.  Appending grows T;
    truncation (used when draft tokens are rejected) shrinks it.  All data
    is plain numpy — the cache is an inference-side object and never carries
    gradients.
    """

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.n_layers = n_layers
        self._keys: List[Optional[np.ndarray]] = [None] * n_layers
        self._values: List[Optional[np.ndarray]] = [None] * n_layers
        self.positions: np.ndarray = np.empty((0,), dtype=np.int64)
        self.segments: Optional[Segments] = None

    # ------------------------------------------------------------------
    @property
    def seq_len(self) -> int:
        return 0 if self._keys[0] is None else self._keys[0].shape[2]

    @property
    def batch_size(self) -> int:
        if self._keys[0] is None:
            raise ShapeError("cache is empty")
        return self._keys[0].shape[0]

    def layer(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (K, V) for layer ``idx``."""
        k, v = self._keys[idx], self._values[idx]
        if k is None or v is None:
            raise ShapeError(f"layer {idx} cache is empty")
        return k, v

    def last_layer(self) -> Tuple[np.ndarray, np.ndarray]:
        """The slice AASD's speculating module consumes."""
        return self.layer(self.n_layers - 1)

    # ------------------------------------------------------------------
    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new-token K/V ``(B, H, Tnew, Dh)`` to one layer."""
        k = np.asarray(k)
        v = np.asarray(v)
        if k.shape != v.shape:
            raise ShapeError(f"K/V shape mismatch: {k.shape} vs {v.shape}")
        if self._keys[layer] is None:
            self._keys[layer] = k.copy()
            self._values[layer] = v.copy()
        else:
            if k.shape[:2] != self._keys[layer].shape[:2] or k.shape[3] != self._keys[layer].shape[3]:
                raise ShapeError(
                    f"append shape {k.shape} incompatible with cache {self._keys[layer].shape}"
                )
            self._keys[layer] = np.concatenate([self._keys[layer], k], axis=2)
            self._values[layer] = np.concatenate([self._values[layer], v], axis=2)

    def extend_positions(self, positions: np.ndarray) -> None:
        """Record absolute positions for tokens just appended to all layers."""
        self.positions = np.concatenate(
            [self.positions, np.asarray(positions, dtype=np.int64)]
        )

    def truncate(self, new_len: int) -> None:
        """Drop cached entries beyond ``new_len`` (rejected draft rollback)."""
        if new_len > self.seq_len:
            raise ShapeError(f"cannot truncate cache of len {self.seq_len} to {new_len}")
        if new_len == self.seq_len:
            return
        prefix = self.segments.prefix_len if self.segments is not None else 0
        if new_len < prefix:
            raise ShapeError(
                f"truncation to {new_len} would cut into the prefill prefix ({prefix})"
            )
        for i in range(self.n_layers):
            if self._keys[i] is not None:
                self._keys[i] = self._keys[i][:, :, :new_len, :]
                self._values[i] = self._values[i][:, :, :new_len, :]
        self.positions = self.positions[:new_len]

    def set_segments(self, n_vision: int, n_prompt: int) -> None:
        """Mark the vision/prompt boundaries right after prefill."""
        self.segments = Segments(vision=(0, n_vision), prompt=(n_vision, n_vision + n_prompt))

    # ------------------------------------------------------------------
    def next_position(self) -> int:
        """Absolute position the next token should occupy."""
        return 0 if self.positions.size == 0 else int(self.positions[-1]) + 1

    def clone(self) -> "KVCache":
        """Deep copy (used by tests and what-if rollouts)."""
        out = KVCache(self.n_layers)
        out._keys = [None if k is None else k.copy() for k in self._keys]
        out._values = [None if v is None else v.copy() for v in self._values]
        out.positions = self.positions.copy()
        out.segments = self.segments
        return out
