"""Model configurations and the named-size registry.

The registry mirrors the paper's model lineup at simulator scale:

* ``sim-7b`` / ``sim-13b`` — targets standing in for LLaVA-7B/13B,
* ``sim-112m`` — the 112M-parameter draft LM used for FT/DT-LLaMA and as
  the language backbone of FT/DT-LLaVA,
* ``sim-112m-llava`` — the tiny multimodal draft (112M-sim LM plus a
  reduced CLIP-ViT stand-in).

Sizes scale together (the 13B sim really is ~2x the 7B sim, and the draft
is ~1/20 of the 7B sim), so cost-model ratios stay meaningful.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from ..errors import ConfigError

__all__ = ["LlamaConfig", "VisionConfig", "LlavaConfig", "get_config", "MODEL_REGISTRY"]


@dataclass(frozen=True)
class LlamaConfig:
    """Decoder-only LM backbone configuration (LLaMA-style)."""

    vocab_size: int
    dim: int = 96
    n_layers: int = 6
    n_heads: int = 6
    mlp_hidden: int = 256
    rope_base: float = 10000.0

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ConfigError(f"dim {self.dim} not divisible by n_heads {self.n_heads}")
        if (self.dim // self.n_heads) % 2 != 0:
            raise ConfigError("head_dim must be even for RoPE")
        if min(self.vocab_size, self.dim, self.n_layers, self.n_heads, self.mlp_hidden) <= 0:
            raise ConfigError("all LlamaConfig sizes must be positive")

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads


@dataclass(frozen=True)
class VisionConfig:
    """Patch-embedding ViT encoder configuration."""

    image_size: int = 48
    patch_size: int = 8
    dim: int = 64
    n_layers: int = 3
    n_heads: int = 4
    mlp_hidden: int = 160

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size != 0:
            raise ConfigError(
                f"image_size {self.image_size} not divisible by patch_size {self.patch_size}"
            )
        if self.dim % self.n_heads != 0:
            raise ConfigError(f"vision dim {self.dim} not divisible by n_heads {self.n_heads}")

    @property
    def n_patches(self) -> int:
        side = self.image_size // self.patch_size
        return side * side

    @property
    def patch_dim(self) -> int:
        return self.patch_size * self.patch_size * 3


@dataclass(frozen=True)
class LlavaConfig:
    """Full MLLM: vision encoder + connector + LM backbone."""

    llama: LlamaConfig
    vision: VisionConfig = field(default_factory=VisionConfig)
    connector_hidden: int = 128

    @property
    def n_vision_tokens(self) -> int:
        return self.vision.n_patches

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LlavaConfig":
        return cls(
            llama=LlamaConfig(**payload["llama"]),
            vision=VisionConfig(**payload["vision"]),
            connector_hidden=payload.get("connector_hidden", 128),
        )


def _registry(vocab_size: int) -> Dict[str, Any]:
    vision = VisionConfig(image_size=48, patch_size=8, dim=64, n_layers=3, n_heads=4)
    vision_tiny = VisionConfig(
        image_size=48, patch_size=16, dim=32, n_layers=1, n_heads=2, mlp_hidden=64
    )
    return {
        "sim-7b": LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab_size, dim=96, n_layers=6, n_heads=6, mlp_hidden=256),
            vision=vision,
        ),
        "sim-13b": LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab_size, dim=128, n_layers=8, n_heads=8, mlp_hidden=352),
            vision=vision,
        ),
        "sim-112m": LlamaConfig(
            vocab_size=vocab_size, dim=48, n_layers=2, n_heads=4, mlp_hidden=128
        ),
        "sim-112m-llava": LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab_size, dim=48, n_layers=2, n_heads=4, mlp_hidden=128),
            vision=vision_tiny,
        ),
    }


MODEL_REGISTRY = tuple(_registry(1).keys())


def get_config(name: str, vocab_size: int):
    """Look up a named configuration for a given vocabulary size."""
    registry = _registry(vocab_size)
    if name not in registry:
        raise ConfigError(f"unknown model name {name!r}; choose from {sorted(registry)}")
    return registry[name]
