"""Vision-language connector: maps visual features into text embedding space.

LLaVA uses a two-layer MLP projector between the CLIP encoder and the LLM;
this is the same module at simulator scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["Connector"]


class Connector(Module):
    """Two-layer GELU MLP from vision dim to LM dim."""

    def __init__(
        self,
        vision_dim: int,
        llm_dim: int,
        hidden: int = 128,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(vision_dim, hidden, rng=gen)
        self.fc2 = Linear(hidden, llm_dim, rng=gen)

    def forward(self, visual_features: Tensor) -> Tensor:
        return self.fc2(F.gelu(self.fc1(visual_features)))
