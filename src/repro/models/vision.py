"""Patch-embedding vision encoder (CLIP-ViT stand-in)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..nn import functional as F
from ..nn import initializers as init
from ..nn.layers import Linear
from ..nn.module import Module, Parameter
from ..nn.normalization import LayerNorm
from ..nn.tensor import Tensor
from .config import VisionConfig

__all__ = ["VisionEncoder", "patchify"]


def patchify(images: np.ndarray, patch_size: int) -> np.ndarray:
    """``(B, H, W, 3) -> (B, n_patches, patch_size*patch_size*3)``."""
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    b, h, w, c = images.shape
    if h % patch_size or w % patch_size:
        raise ShapeError(f"image {h}x{w} not divisible by patch size {patch_size}")
    ph, pw = h // patch_size, w // patch_size
    x = images.reshape(b, ph, patch_size, pw, patch_size, c)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(b, ph * pw, patch_size * patch_size * c)


class _EncoderSelfAttention(Module):
    """Bidirectional (non-causal) multi-head self-attention."""

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.n_heads = n_heads
        self.wq = Linear(dim, dim, bias=False, rng=rng)
        self.wk = Linear(dim, dim, bias=False, rng=rng)
        self.wv = Linear(dim, dim, bias=False, rng=rng)
        self.wo = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        dh = d // self.n_heads
        def heads(y: Tensor) -> Tensor:
            return y.reshape(b, t, self.n_heads, dh).transpose(0, 2, 1, 3)
        q, k, v = heads(self.wq(x)), heads(self.wk(x)), heads(self.wv(x))
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(dh))
        out = F.softmax(scores, axis=-1) @ v
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.wo(out)


class _EncoderBlock(Module):
    """Pre-norm ViT encoder block with a GELU MLP."""

    def __init__(self, dim: int, n_heads: int, mlp_hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.attn_norm = LayerNorm(dim)
        self.attn = _EncoderSelfAttention(dim, n_heads, rng)
        self.mlp_norm = LayerNorm(dim)
        self.fc1 = Linear(dim, mlp_hidden, rng=rng)
        self.fc2 = Linear(mlp_hidden, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.attn_norm(x))
        return x + self.fc2(F.gelu(self.fc1(self.mlp_norm(x))))


class VisionEncoder(Module):
    """Images -> sequence of visual feature vectors ``(B, n_patches, dim)``."""

    def __init__(self, config: VisionConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.patch_embed = Linear(config.patch_dim, config.dim, rng=gen)
        self.pos_embed = Parameter(
            init.normal(gen, (config.n_patches, config.dim)), name="pos_embed"
        )
        self.blocks = [
            _EncoderBlock(config.dim, config.n_heads, config.mlp_hidden, gen)
            for _ in range(config.n_layers)
        ]
        self.out_norm = LayerNorm(config.dim)

    def forward(self, images: np.ndarray) -> Tensor:
        patches = patchify(images, self.config.patch_size)
        if patches.shape[1] != self.config.n_patches:
            raise ShapeError(
                f"expected {self.config.n_patches} patches, got {patches.shape[1]}"
            )
        x = self.patch_embed(Tensor(patches)) + self.pos_embed
        for block in self.blocks:
            x = block(x)
        return self.out_norm(x)
