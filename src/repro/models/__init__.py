"""Model family: configs, KV cache, MiniLlama LM, MiniLlava MLLM."""

from .config import LlamaConfig, LlavaConfig, MODEL_REGISTRY, VisionConfig, get_config
from .connector import Connector
from .generation import GenerationLimits, greedy_generate, greedy_generate_text_only
from .kv_cache import KVCache, Segments
from .llama import LlamaOutput, MiniLlama
from .llava import MiniLlava
from .vision import VisionEncoder, patchify

__all__ = [
    "LlamaConfig",
    "VisionConfig",
    "LlavaConfig",
    "get_config",
    "MODEL_REGISTRY",
    "KVCache",
    "Segments",
    "MiniLlama",
    "LlamaOutput",
    "MiniLlava",
    "VisionEncoder",
    "patchify",
    "Connector",
    "GenerationLimits",
    "greedy_generate",
    "greedy_generate_text_only",
]
