"""MiniLlava: vision encoder + connector + MiniLlama backbone.

The input layout matches LLaVA: ``[vision tokens][bos][text tokens...]``,
with vision tokens occupying positions ``0 .. n_vision-1``.  The KV cache
records the modality segment boundaries so AASD can compress the vision
slice and the ablations can mask segments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from ..nn.ragged import pack_rows
from ..nn.tensor import Tensor, concat
from .config import LlavaConfig
from .connector import Connector
from .kv_cache import KVCache
from .llama import LlamaOutput, MiniLlama
from .vision import VisionEncoder

__all__ = ["MiniLlava"]


class MiniLlava:
    """The target MLLM (and, at tiny scale, the LLaVA draft baseline).

    Not a Module subclass itself; it owns three modules and exposes a
    combined parameter list, which keeps the state-dict layout explicit.
    """

    def __init__(self, config: LlavaConfig, rng: Optional[np.random.Generator] = None) -> None:
        gen = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.vision = VisionEncoder(config.vision, rng=gen)
        self.connector = Connector(
            config.vision.dim, config.llama.dim, hidden=config.connector_hidden, rng=gen
        )
        self.llama = MiniLlama(config.llama, rng=gen)

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def named_parameters(self):
        yield from self.vision.named_parameters(prefix="vision.")
        yield from self.connector.named_parameters(prefix="connector.")
        yield from self.llama.named_parameters(prefix="llama.")

    def parameters(self):
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def state_dict(self):
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state, strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                    )
                param.data = value.astype(param.data.dtype, copy=True)

    def train(self, mode: bool = True) -> "MiniLlava":
        self.vision.train(mode)
        self.connector.train(mode)
        self.llama.train(mode)
        return self

    def eval(self) -> "MiniLlava":
        return self.train(False)

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    @property
    def n_vision_tokens(self) -> int:
        return self.config.n_vision_tokens

    def encode_image(self, images: np.ndarray) -> Tensor:
        """Images -> vision embeddings in LM space ``(B, n_vision, dim)``."""
        return self.connector(self.vision(images))

    def build_input_embeds(self, images: np.ndarray, text_ids: np.ndarray) -> Tensor:
        """Concatenate vision embeddings and text token embeddings."""
        vis = self.encode_image(images)
        txt = self.llama.embed_tokens(text_ids)
        if vis.shape[0] != txt.shape[0]:
            raise ShapeError(
                f"batch mismatch: {vis.shape[0]} images vs {txt.shape[0]} text rows"
            )
        return concat([vis, txt], axis=1)

    def prefill(self, images: np.ndarray, text_ids: np.ndarray) -> Tuple[KVCache, np.ndarray]:
        """Process image + prompt; returns the primed cache and last logits.

        ``text_ids``: ``(B, Tp)`` or ``(Tp,)`` prompt ids (bos included by
        the caller).  Returns ``(cache, logits_last)`` where ``logits_last``
        is the ``(B, vocab)`` distribution for the first generated token.
        """
        text_ids = np.asarray(text_ids, dtype=np.int64)
        if text_ids.ndim == 1:
            text_ids = text_ids[None, :]
        x = self.build_input_embeds(images, text_ids)
        cache = self.llama.new_cache()
        total = x.shape[1]
        out = self.llama.forward_embeds(x, np.arange(total, dtype=np.int64), cache=cache)
        cache.set_segments(self.n_vision_tokens, text_ids.shape[1])
        return cache, out.logits.data[:, -1, :]

    def decode(
        self,
        token_ids: np.ndarray,
        cache: KVCache,
        update_cache: bool = True,
        positions: Optional[np.ndarray] = None,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> LlamaOutput:
        """Decode new tokens against the cache (verification / AR steps).

        ``positions`` / ``extra_blocked`` serve tree-verification feeds,
        whose rows carry per-branch (non-monotone) positions and need the
        ancestor mask OR'd onto causality; both default to the plain
        linear-decode behavior.
        """
        return self.llama.forward(
            token_ids, positions=positions, cache=cache,
            update_cache=update_cache, extra_blocked=extra_blocked,
        )

    # ------------------------------------------------------------------
    # Packed ragged-batch paths (docs/kernels.md)
    # ------------------------------------------------------------------
    def prefill_batch(
        self,
        images: Sequence[np.ndarray],
        text_rows: Sequence[np.ndarray],
    ) -> Tuple[List[KVCache], List[np.ndarray]]:
        """Prefill B requests as one packed forward; per-request results.

        ``images`` is the image batch — a stacked ``(B, ...)`` array or a
        sequence of per-request images — and ``text_rows[i]`` request
        ``i``'s prompt ids (ragged lengths allowed).  The vision tower
        and connector run once over the whole image batch (numpy loops
        the batch axis per image, so each image's embedding is bitwise
        equal to its solo encode), then the LM prefill runs as one
        cu-seqlen-packed forward over the concatenated ``[vision][text]``
        rows.  Returns per-request primed caches (segments set as in
        :meth:`prefill`) and the ``(1, vocab)`` last-position logits,
        bitwise identical to B solo prefills.
        """
        if not isinstance(images, np.ndarray):
            # repro: allow[hotpath-reach] -- prefill runs once per request, not per decode step
            images = np.stack([np.asarray(img) for img in images])
        if images.shape[0] != len(text_rows):
            raise ShapeError(
                f"batch mismatch: {images.shape[0]} images vs {len(text_rows)} text rows"
            )
        vis = self.encode_image(images)
        pieces: List[Tensor] = []
        position_rows: List[np.ndarray] = []
        caches: List[KVCache] = []
        rows2d: List[np.ndarray] = []
        for i, text_ids in enumerate(text_rows):
            text_ids = np.asarray(text_ids, dtype=np.int64)
            if text_ids.ndim == 1:
                text_ids = text_ids[None, :]
            rows2d.append(text_ids)
            pieces.append(vis[i : i + 1])
            pieces.append(self.llama.embed_tokens(text_ids))
            total = self.n_vision_tokens + text_ids.shape[1]
            position_rows.append(np.arange(total, dtype=np.int64))
            caches.append(self.llama.new_cache())
        outs = self.llama.forward_packed_embeds(
            pack_rows(pieces, axis=1), position_rows, list(caches)
        )
        for cache, text_ids in zip(caches, rows2d):
            cache.set_segments(self.n_vision_tokens, text_ids.shape[1])
        return caches, [out.logits.data[:, -1, :] for out in outs]

    def decode_batch(
        self,
        token_rows: Sequence[np.ndarray],
        caches: Sequence[KVCache],
        update_cache: bool = True,
        position_rows: Optional[Sequence[Optional[np.ndarray]]] = None,
        extra_blocked_rows: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[LlamaOutput]:
        """Batched :meth:`decode`: one packed forward over B feed rows.

        Used by the engine's packed verification round; every row must
        hold >= 2 tokens for the packing-stability contract to apply
        (verify feeds are ``gamma + 1 >= 2`` tokens by construction, tree
        feeds ``1 + n_nodes >= 2``).  ``position_rows`` /
        ``extra_blocked_rows`` carry per-request tree-feed positions and
        ancestor masks (see :meth:`decode`).
        """
        return self.llama.forward_packed(
            list(token_rows), list(caches), update_cache,
            position_rows=list(position_rows) if position_rows is not None else None,
            extra_blocked_rows=(
                list(extra_blocked_rows) if extra_blocked_rows is not None else None
            ),
        )

    def forward_train(self, images: np.ndarray, text_ids: np.ndarray) -> LlamaOutput:
        """Full teacher-forced pass (no cache) for training and KV harvest.

        The returned logits/hidden cover vision + text positions; use
        :meth:`text_slice` to index the text part.
        """
        x = self.build_input_embeds(images, text_ids)
        return self.llama.forward_embeds(
            x, np.arange(x.shape[1], dtype=np.int64), cache=None
        )

    def text_slice(self, tensor: Tensor) -> Tensor:
        """Slice positions belonging to text out of a full-sequence tensor."""
        return tensor[:, self.n_vision_tokens :, ...]
