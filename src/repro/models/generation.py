"""Plain autoregressive generation helpers (uninstrumented).

The instrumented decoders used for benchmarking live in
:mod:`repro.decoding`; the functions here are the minimal greedy loop used
for distillation data generation, the model zoo's sanity checks and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn.tensor import no_grad
from .llava import MiniLlava

__all__ = ["GenerationLimits", "greedy_generate", "greedy_generate_text_only"]


@dataclass(frozen=True)
class GenerationLimits:
    """Stopping rules for generation."""

    max_new_tokens: int = 64
    eos_id: Optional[int] = None


def greedy_generate(
    model: MiniLlava,
    image: np.ndarray,
    prompt_ids: np.ndarray,
    limits: GenerationLimits,
) -> List[int]:
    """Greedy autoregressive generation for a single sample."""
    with no_grad():
        cache, logits = model.prefill(image[None] if image.ndim == 3 else image, prompt_ids)
        generated: List[int] = []
        token = int(np.argmax(logits[0]))
        for _ in range(limits.max_new_tokens):
            generated.append(token)
            if limits.eos_id is not None and token == limits.eos_id:
                break
            out = model.decode(np.asarray([[token]]), cache)
            token = int(np.argmax(out.logits.data[0, -1]))
    return generated


def greedy_generate_text_only(model, prompt_ids: np.ndarray, limits: GenerationLimits) -> List[int]:
    """Greedy generation for a text-only MiniLlama model."""
    with no_grad():
        cache = model.new_cache()
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64).reshape(1, -1)
        out = model.forward(prompt_ids, cache=cache)
        generated: List[int] = []
        token = int(np.argmax(out.logits.data[0, -1]))
        for _ in range(limits.max_new_tokens):
            generated.append(token)
            if limits.eos_id is not None and token == limits.eos_id:
                break
            out = model.forward(np.asarray([[token]]), cache=cache)
            token = int(np.argmax(out.logits.data[0, -1]))
    return generated
