"""MiniLlama: a LLaMA-style decoder-only LM (RoPE, RMSNorm, SwiGLU).

Used in three roles: the LM backbone of the target MLLM, the standalone
language-only draft baseline (FT/DT-LLaMA), and the backbone of the tiny
LLaVA draft baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..nn.attention import attend_data, causal_mask, merge_heads, ragged_attend
from ..nn.kernels import (
    linear_data,
    merge_heads_data,
    project_qkv_data,
    rmsnorm_data,
    swiglu_data,
)
from ..nn.layers import Embedding
from ..nn.module import Module
from ..nn.normalization import RMSNorm
from ..nn.ragged import cu_seqlens, row_extents
from ..nn.rope import RotaryEmbedding
from ..nn.tensor import Tensor, concat, is_grad_enabled, matmul_data
from ..nn.transformer import DecoderBlock
from .config import LlamaConfig
from .kv_cache import KVCache

__all__ = ["MiniLlama", "LlamaOutput"]


@dataclass
class LlamaOutput:
    """Forward-pass result for the new tokens only."""

    logits: Tensor              # (B, T, vocab)
    hidden: Tensor              # (B, T, dim) final-norm hidden states
    new_kv: List[Tuple[Tensor, Tensor]]  # per layer, (B, H, T, Dh)

    @property
    def last_layer_kv(self) -> Tuple[Tensor, Tensor]:
        """The slice of fresh KV that AASD's draft head consumes."""
        return self.new_kv[-1]


class _PackedSliceOutput:
    """One request's view of a packed forward, materialised on access.

    Quacks like :class:`LlamaOutput` (``logits`` / ``hidden`` / ``new_kv``
    / ``last_layer_kv``) but builds each per-request ``Tensor`` slice only
    when the field is read.  The serving rounds consume just ``logits``
    and ``last_layer_kv`` — the prefill round only the last-position
    logits — so the eager construction of B x n_layers x 2 slice tensors
    per forward was almost entirely thrown away.  Slicing the raw packed
    array and wrapping it is the same view ``Tensor.__getitem__`` would
    produce, so values are bitwise unchanged.
    """

    __slots__ = ("_logits_d", "_normed_d", "_kv_data", "_start", "_end")

    def __init__(self, logits_d, normed_d, kv_data, start: int, end: int) -> None:
        self._logits_d = logits_d
        self._normed_d = normed_d
        self._kv_data = kv_data
        self._start = start
        self._end = end

    @property
    def logits(self) -> Tensor:
        return Tensor(self._logits_d[:, self._start:self._end, :])

    @property
    def hidden(self) -> Tensor:
        return Tensor(self._normed_d[:, self._start:self._end, :])

    @property
    def new_kv(self) -> List[Tuple[Tensor, Tensor]]:
        return [
            (
                Tensor(k[:, :, self._start:self._end, :]),
                Tensor(v[:, :, self._start:self._end, :]),
            )
            for k, v in self._kv_data
        ]

    @property
    def last_layer_kv(self) -> Tuple[Tensor, Tensor]:
        k, v = self._kv_data[-1]
        return (
            Tensor(k[:, :, self._start:self._end, :]),
            Tensor(v[:, :, self._start:self._end, :]),
        )


class MiniLlama(Module):
    """Decoder-only causal LM with a tied embedding/LM head."""

    def __init__(self, config: LlamaConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=gen)
        self.rope = RotaryEmbedding(config.head_dim, base=config.rope_base)
        self.blocks = [
            DecoderBlock(config.dim, config.n_heads, config.mlp_hidden, rope=self.rope, rng=gen)
            for _ in range(config.n_layers)
        ]
        self.norm = RMSNorm(config.dim)

    # ------------------------------------------------------------------
    def embed_tokens(self, token_ids: np.ndarray) -> Tensor:
        """``(B, T)`` int ids -> ``(B, T, dim)`` embeddings."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        return self.embed(token_ids)

    def lm_head(self, hidden: Tensor) -> Tensor:
        """Tied head: hidden states -> vocabulary logits."""
        return hidden @ self.embed.weight.swapaxes(0, 1)

    # ------------------------------------------------------------------
    def forward_embeds(
        self,
        x: Tensor,
        positions: np.ndarray,
        cache: Optional[KVCache] = None,
        update_cache: bool = True,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> LlamaOutput:
        """Run the decoder stack over pre-computed embeddings.

        When ``cache`` is non-empty the new tokens attend to the cached
        context; with ``update_cache`` the fresh KV is appended.
        ``extra_blocked`` (broadcastable to ``(T, Tk_total)``) is OR'd with
        the causal mask at every layer — the tree-verification hook, where
        new tokens on sibling branches may share positions and must not
        attend to each other (``repro.decoding.tree``).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if x.ndim != 3:
            raise ShapeError(f"expected (B, T, D) embeddings, got {x.shape}")
        if positions.shape[0] != x.shape[1]:
            raise ShapeError(
                f"positions length {positions.shape[0]} != sequence length {x.shape[1]}"
            )
        use_cache = cache is not None and cache.seq_len > 0
        key_positions = cache.positions if use_cache else None

        new_kv: List[Tuple[Tensor, Tensor]] = []
        hidden = x
        for layer_idx, block in enumerate(self.blocks):
            past = cache.layer(layer_idx) if use_cache else None
            hidden, k_new, v_new = block(
                hidden,
                positions=positions,
                past_kv=past,
                key_positions=key_positions,
                extra_blocked=extra_blocked,
            )
            new_kv.append((k_new, v_new))
            if cache is not None and update_cache:
                cache.append(layer_idx, k_new.data, v_new.data)

        if cache is not None and update_cache:
            cache.extend_positions(positions)

        normed = self.norm(hidden)
        return LlamaOutput(logits=self.lm_head(normed), hidden=normed, new_kv=new_kv)

    def forward(
        self,
        token_ids: np.ndarray,
        positions: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        update_cache: bool = True,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> LlamaOutput:
        """Decoder forward over token ids (see :meth:`forward_embeds`)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if positions is None:
            start = cache.next_position() if cache is not None else 0
            positions = np.arange(start, start + token_ids.shape[1], dtype=np.int64)
        return self.forward_embeds(
            self.embed_tokens(token_ids), positions, cache=cache,
            update_cache=update_cache, extra_blocked=extra_blocked,
        )

    # ------------------------------------------------------------------
    # Packed ragged-batch forward (docs/kernels.md).
    #
    # B variable-length requests run as ONE fused pass: every row-wise op
    # (norms, q/k/v/o projections, RoPE, MLP, LM head) executes once over
    # the packed (1, sum_tokens, D) tensor, while attention runs
    # segment-exact per request so each request's logits stay bitwise
    # identical to a solo forward_embeds call.  Bitwise safety requires
    # every row to contribute >= 2 tokens (single rows take the gemv
    # kernel, whose K-reduction differs from gemm's at large K — the
    # packing-stability contract in repro.nn.ragged).

    def forward_packed_embeds(
        self,
        x: Tensor,
        position_rows: List[np.ndarray],
        caches: List[Optional[KVCache]],
        update_cache: bool = True,
        extra_blocked_rows: Optional[List[Optional[np.ndarray]]] = None,
    ) -> List[LlamaOutput]:
        """Fused decoder pass over a cu-seqlen-packed ragged batch.

        Parameters
        ----------
        x:
            Packed embeddings ``(1, sum_tokens, D)``; request ``i`` owns
            the rows at offsets ``cu[i]:cu[i+1]`` where ``cu`` is the
            cumulative sum of ``len(position_rows[i])``.
        position_rows:
            Per-request absolute positions of the new tokens.
        caches:
            Per-request KV caches (entries may be ``None`` for cacheless
            requests); request ``i``'s queries attend to ``caches[i]``'s
            context plus its own new tokens — never across requests.
        update_cache:
            Append each request's fresh KV to its cache (as in
            :meth:`forward_embeds`).
        extra_blocked_rows:
            Optional per-request extra masks (each broadcastable to
            ``(T_i, Tk_i_total)``, or ``None``), OR'd with that request's
            causal mask — the tree-verification hook (sibling branches
            may share positions and must not see each other).

        Returns one :class:`LlamaOutput`-shaped result per request whose
        ``logits`` / ``hidden`` / ``new_kv`` are zero-copy slices of the
        packed results, bitwise identical to that request's solo forward
        (the inference fast path returns them lazily — see
        :class:`_PackedSliceOutput`).
        """
        if len(position_rows) != len(caches):
            raise ShapeError(
                f"{len(position_rows)} position rows vs {len(caches)} caches"
            )
        if x.ndim != 3:
            raise ShapeError(f"expected (1, sum_tokens, D) embeddings, got {x.shape}")
        pos_rows = [np.asarray(p, dtype=np.int64) for p in position_rows]
        lengths = [p.shape[0] for p in pos_rows]
        cu = cu_seqlens(lengths)
        extents = row_extents(cu)
        if x.shape[1] != int(cu[-1]):
            raise ShapeError(
                f"packed length {x.shape[1]} != sum of row lengths {int(cu[-1])}"
            )
        # repro: allow[hotpath-reach] -- packs O(feed) position rows once per packed forward
        positions = np.concatenate(pos_rows) if pos_rows else np.zeros(0, np.int64)
        use_cache = [c is not None and c.seq_len > 0 for c in caches]

        if extra_blocked_rows is not None and len(extra_blocked_rows) != len(caches):
            raise ShapeError(
                f"{len(extra_blocked_rows)} extra-mask rows vs {len(caches)} caches"
            )

        # Masks depend on positions only, never on layer values — build
        # them once and reuse across the whole stack.
        blocked: List[np.ndarray] = []
        for i in range(len(extents)):
            if use_cache[i]:
                # repro: allow[hotpath-reach] -- O(context) int position vector, built once per row per forward
                all_pos = np.concatenate(
                    [np.asarray(caches[i].positions, dtype=np.int64), pos_rows[i]]
                )
            else:
                all_pos = pos_rows[i]
            mask = causal_mask(pos_rows[i], all_pos)
            if extra_blocked_rows is not None and extra_blocked_rows[i] is not None:
                mask = mask | np.asarray(extra_blocked_rows[i], dtype=bool)
            blocked.append(mask)

        # Inference (the serving rounds) skips the autograd wrappers
        # entirely: every row-wise op runs through the raw-ndarray
        # kernels of repro.nn.kernels (same ufuncs in the same order,
        # so bitwise identity holds), and the per-request attention loop
        # appends each request's fresh KV to its cache first, then
        # attends over the cache's arena view — same values the concat
        # would build, without the per-layer-per-request concat copies.
        fast = not is_grad_enabled()
        if fast:
            new_kv_data: List[Tuple[np.ndarray, np.ndarray]] = []
            hidden_d = x.data
            for layer_idx, block in enumerate(self.blocks):
                attn_layer = block.attn
                attn_in = rmsnorm_data(
                    hidden_d, block.attn_norm.weight.data, block.attn_norm.eps
                )
                qd, kd, vd = project_qkv_data(attn_layer, attn_in, positions)
                outs: List[np.ndarray] = []
                for i, (start, end) in enumerate(extents):
                    k_i = kd[:, :, start:end, :]
                    v_i = vd[:, :, start:end, :]
                    if update_cache and caches[i] is not None:
                        caches[i].append(layer_idx, k_i, v_i)
                        k_all, v_all = caches[i].layer(layer_idx)
                        k_all, v_all = np.asarray(k_all), np.asarray(v_all)
                    elif use_cache[i]:
                        past_k, past_v = caches[i].layer(layer_idx)
                        # repro: allow[hotpath-reach] -- legacy-cache fallback row; arena caches take the zero-copy branch above
                        k_all = np.concatenate([np.asarray(past_k), k_i], axis=2)
                        # repro: allow[hotpath-reach] -- legacy-cache fallback row; arena caches take the zero-copy branch above
                        v_all = np.concatenate([np.asarray(past_v), v_i], axis=2)
                    else:
                        k_all, v_all = k_i, v_i
                    outs.append(
                        attend_data(qd[:, :, start:end, :], k_all, v_all, blocked[i])
                    )
                if len(outs) > 1:
                    # segment writes into one preallocated packed buffer:
                    # same values np.concatenate would copy, minus its
                    # temporary-list machinery (this runs per layer)
                    attn_out = np.empty_like(qd)
                    for (start, end), seg in zip(extents, outs):
                        attn_out[:, :, start:end, :] = seg
                else:
                    attn_out = outs[0]
                # residuals accumulate in place into the fresh branch
                # output (bitwise equal: IEEE addition is commutative)
                delta = linear_data(
                    merge_heads_data(attn_out), attn_layer.wo.weight.data
                )
                delta += hidden_d
                hidden_d = delta
                mlp = block.mlp
                delta = swiglu_data(
                    rmsnorm_data(
                        hidden_d, block.mlp_norm.weight.data, block.mlp_norm.eps
                    ),
                    mlp.gate.weight.data, mlp.up.weight.data, mlp.down.weight.data,
                )
                delta += hidden_d
                hidden_d = delta
                new_kv_data.append((kd, vd))
            if update_cache:
                for cache, pos in zip(caches, pos_rows):
                    if cache is not None:
                        cache.extend_positions(pos)
            normed_d = rmsnorm_data(hidden_d, self.norm.weight.data, self.norm.eps)
            logits_d = matmul_data(normed_d, self.embed.weight.data.swapaxes(0, 1))
            return [
                _PackedSliceOutput(logits_d, normed_d, new_kv_data, start, end)
                for start, end in extents
            ]

        new_kv_layers: List[Tuple[Tensor, Tensor]] = []
        hidden = x
        for layer_idx, block in enumerate(self.blocks):
            q, k_new, v_new = block.attn.project_qkv(
                block.attn_norm(hidden), positions
            )
            keys: List[Tensor] = []
            values: List[Tensor] = []
            for i, (start, end) in enumerate(extents):
                k_i = k_new[:, :, start:end, :]
                v_i = v_new[:, :, start:end, :]
                if use_cache[i]:
                    past_k, past_v = caches[i].layer(layer_idx)
                    k_i = concat([Tensor(np.asarray(past_k)), k_i], axis=2)
                    v_i = concat([Tensor(np.asarray(past_v)), v_i], axis=2)
                keys.append(k_i)
                values.append(v_i)
            attn = ragged_attend(q, cu, keys, values, blocked)
            hidden = hidden + block.attn.wo(merge_heads(attn))
            hidden = hidden + block.mlp(block.mlp_norm(hidden))
            new_kv_layers.append((k_new, v_new))
            if update_cache:
                for i, (start, end) in enumerate(extents):
                    if caches[i] is not None:
                        caches[i].append(
                            layer_idx,
                            k_new.data[:, :, start:end, :],
                            v_new.data[:, :, start:end, :],
                        )
        if update_cache:
            for cache, pos in zip(caches, pos_rows):
                if cache is not None:
                    cache.extend_positions(pos)

        normed = self.norm(hidden)
        logits = self.lm_head(normed)
        return [
            LlamaOutput(
                logits=logits[:, start:end, :],
                hidden=normed[:, start:end, :],
                new_kv=[
                    (k[:, :, start:end, :], v[:, :, start:end, :])
                    for (k, v) in new_kv_layers
                ],
            )
            for start, end in extents
        ]

    def forward_packed(
        self,
        token_rows: List[np.ndarray],
        caches: List[Optional[KVCache]],
        update_cache: bool = True,
        position_rows: Optional[List[np.ndarray]] = None,
        extra_blocked_rows: Optional[List[Optional[np.ndarray]]] = None,
    ) -> List[LlamaOutput]:
        """Packed ragged-batch forward over per-request token-id rows.

        Each ``token_rows[i]`` is request ``i``'s new token ids (1-D or
        ``(1, T_i)``); positions continue from ``caches[i].next_position()``
        exactly as in :meth:`forward`, unless explicit ``position_rows``
        are given (tree-verification feeds carry non-monotone per-branch
        positions).  ``extra_blocked_rows`` optionally adds per-request
        masks on top of causality.  The embedding gather and all row-wise
        ops run fused over the packed batch; see
        :meth:`forward_packed_embeds`.
        """
        if len(token_rows) != len(caches):
            raise ShapeError(f"{len(token_rows)} token rows vs {len(caches)} caches")
        if position_rows is not None and len(position_rows) != len(caches):
            raise ShapeError(
                f"{len(position_rows)} position rows vs {len(caches)} caches"
            )
        rows2d = []
        pos_rows = []
        for i, (ids, cache) in enumerate(zip(token_rows, caches)):
            ids = np.asarray(ids, dtype=np.int64)
            if ids.ndim == 1:
                ids = ids[None, :]
            rows2d.append(ids)
            if position_rows is not None:
                pos = np.asarray(position_rows[i], dtype=np.int64)
                if pos.shape[0] != ids.shape[1]:
                    raise ShapeError(
                        f"request {i}: {pos.shape[0]} positions for "
                        f"{ids.shape[1]} tokens"
                    )
            else:
                start = cache.next_position() if cache is not None else 0
                pos = np.arange(start, start + ids.shape[1], dtype=np.int64)
            pos_rows.append(pos)
        # repro: allow[hotpath-reach] -- packs O(feed) token ids once per packed forward
        packed_ids = np.concatenate(rows2d, axis=1)
        return self.forward_packed_embeds(
            self.embed_tokens(packed_ids), pos_rows, caches, update_cache,
            extra_blocked_rows=extra_blocked_rows,
        )

    def new_cache(self) -> KVCache:
        return KVCache(self.config.n_layers)
