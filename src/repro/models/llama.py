"""MiniLlama: a LLaMA-style decoder-only LM (RoPE, RMSNorm, SwiGLU).

Used in three roles: the LM backbone of the target MLLM, the standalone
language-only draft baseline (FT/DT-LLaMA), and the backbone of the tiny
LLaVA draft baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..nn.layers import Embedding
from ..nn.module import Module
from ..nn.normalization import RMSNorm
from ..nn.rope import RotaryEmbedding
from ..nn.tensor import Tensor
from ..nn.transformer import DecoderBlock
from .config import LlamaConfig
from .kv_cache import KVCache

__all__ = ["MiniLlama", "LlamaOutput"]


@dataclass
class LlamaOutput:
    """Forward-pass result for the new tokens only."""

    logits: Tensor              # (B, T, vocab)
    hidden: Tensor              # (B, T, dim) final-norm hidden states
    new_kv: List[Tuple[Tensor, Tensor]]  # per layer, (B, H, T, Dh)

    @property
    def last_layer_kv(self) -> Tuple[Tensor, Tensor]:
        """The slice of fresh KV that AASD's draft head consumes."""
        return self.new_kv[-1]


class MiniLlama(Module):
    """Decoder-only causal LM with a tied embedding/LM head."""

    def __init__(self, config: LlamaConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=gen)
        self.rope = RotaryEmbedding(config.head_dim, base=config.rope_base)
        self.blocks = [
            DecoderBlock(config.dim, config.n_heads, config.mlp_hidden, rope=self.rope, rng=gen)
            for _ in range(config.n_layers)
        ]
        self.norm = RMSNorm(config.dim)

    # ------------------------------------------------------------------
    def embed_tokens(self, token_ids: np.ndarray) -> Tensor:
        """``(B, T)`` int ids -> ``(B, T, dim)`` embeddings."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        return self.embed(token_ids)

    def lm_head(self, hidden: Tensor) -> Tensor:
        """Tied head: hidden states -> vocabulary logits."""
        return hidden @ self.embed.weight.swapaxes(0, 1)

    # ------------------------------------------------------------------
    def forward_embeds(
        self,
        x: Tensor,
        positions: np.ndarray,
        cache: Optional[KVCache] = None,
        update_cache: bool = True,
    ) -> LlamaOutput:
        """Run the decoder stack over pre-computed embeddings.

        When ``cache`` is non-empty the new tokens attend to the cached
        context; with ``update_cache`` the fresh KV is appended.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if x.ndim != 3:
            raise ShapeError(f"expected (B, T, D) embeddings, got {x.shape}")
        if positions.shape[0] != x.shape[1]:
            raise ShapeError(
                f"positions length {positions.shape[0]} != sequence length {x.shape[1]}"
            )
        use_cache = cache is not None and cache.seq_len > 0
        key_positions = cache.positions if use_cache else None

        new_kv: List[Tuple[Tensor, Tensor]] = []
        hidden = x
        for layer_idx, block in enumerate(self.blocks):
            past = cache.layer(layer_idx) if use_cache else None
            hidden, k_new, v_new = block(
                hidden,
                positions=positions,
                past_kv=past,
                key_positions=key_positions,
            )
            new_kv.append((k_new, v_new))
            if cache is not None and update_cache:
                cache.append(layer_idx, k_new.data, v_new.data)

        if cache is not None and update_cache:
            cache.extend_positions(positions)

        normed = self.norm(hidden)
        return LlamaOutput(logits=self.lm_head(normed), hidden=normed, new_kv=new_kv)

    def forward(
        self,
        token_ids: np.ndarray,
        positions: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        update_cache: bool = True,
    ) -> LlamaOutput:
        """Decoder forward over token ids (see :meth:`forward_embeds`)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if positions is None:
            start = cache.next_position() if cache is not None else 0
            positions = np.arange(start, start + token_ids.shape[1], dtype=np.int64)
        return self.forward_embeds(
            self.embed_tokens(token_ids), positions, cache=cache, update_cache=update_cache
        )

    def new_cache(self) -> KVCache:
        return KVCache(self.config.n_layers)
