"""Concatenate-based reference caches: the executable pre-arena spec.

These are the original ``np.concatenate``-on-every-append implementations
of :class:`~repro.models.kv_cache.KVCache` and
:class:`~repro.core.hybrid_cache.HybridKVCache`, kept verbatim (O(T) per
appended token, O(T^2) per sequence) for three jobs:

* **Property tests** — random interleavings of append / truncate /
  rollback / gather on the arena-backed caches must stay
  element-identical to these (``tests/core/test_kv_arena_properties.py``).
* **Decode equivalence** — greedy decode (solo and batched serving) with
  the reference caches swapped in must emit token-identical output
  (``tests/core/test_arena_equivalence.py``).
* **Benchmark baseline** — ``benchmarks/bench_kv_arena.py`` measures the
  arena's speedup against exactly this behaviour.

Production code must never import these; the engine and models always use
the arena-backed classes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..models.kv_cache import Segments

__all__ = ["ReferenceKVCache", "ReferenceHybridKVCache"]

SEGMENT_VISION = 0
SEGMENT_TEXT = 1


class ReferenceKVCache:
    """Per-layer KV store that reallocates on every append (the old way)."""

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.n_layers = n_layers
        self._keys: List[Optional[np.ndarray]] = [None] * n_layers
        self._values: List[Optional[np.ndarray]] = [None] * n_layers
        self.positions: np.ndarray = np.empty((0,), dtype=np.int64)
        self.segments: Optional[Segments] = None

    @property
    def seq_len(self) -> int:
        """Tokens currently cached (0 when empty)."""
        return 0 if self._keys[0] is None else self._keys[0].shape[2]

    @property
    def batch_size(self) -> int:
        """Leading batch dimension of the cached arrays."""
        if self._keys[0] is None:
            raise ShapeError("cache is empty")
        return self._keys[0].shape[0]

    def layer(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (K, V) for layer ``idx``."""
        k, v = self._keys[idx], self._values[idx]
        if k is None or v is None:
            raise ShapeError(f"layer {idx} cache is empty")
        return k, v

    def last_layer(self) -> Tuple[np.ndarray, np.ndarray]:
        """The slice AASD's speculating module consumes."""
        return self.layer(self.n_layers - 1)

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new-token K/V ``(B, H, Tnew, Dh)`` via full concatenate."""
        k = np.asarray(k)
        v = np.asarray(v)
        if k.shape != v.shape:
            raise ShapeError(f"K/V shape mismatch: {k.shape} vs {v.shape}")
        if self._keys[layer] is None:
            self._keys[layer] = k.copy()
            self._values[layer] = v.copy()
        else:
            if k.shape[:2] != self._keys[layer].shape[:2] or k.shape[3] != self._keys[layer].shape[3]:
                raise ShapeError(
                    f"append shape {k.shape} incompatible with cache {self._keys[layer].shape}"
                )
            self._keys[layer] = np.concatenate([self._keys[layer], k], axis=2)
            self._values[layer] = np.concatenate([self._values[layer], v], axis=2)

    def extend_positions(self, positions: np.ndarray) -> None:
        """Record absolute positions for tokens just appended to all layers."""
        self.positions = np.concatenate(
            [self.positions, np.asarray(positions, dtype=np.int64)]
        )

    def truncate(self, new_len: int) -> None:
        """Drop cached entries beyond ``new_len`` via slice-copy."""
        if new_len > self.seq_len:
            raise ShapeError(f"cannot truncate cache of len {self.seq_len} to {new_len}")
        if new_len == self.seq_len:
            return
        prefix = self.segments.prefix_len if self.segments is not None else 0
        if new_len < prefix:
            raise ShapeError(
                f"truncation to {new_len} would cut into the prefill prefix ({prefix})"
            )
        for i in range(self.n_layers):
            if self._keys[i] is not None:
                self._keys[i] = self._keys[i][:, :, :new_len, :]
                self._values[i] = self._values[i][:, :, :new_len, :]
        self.positions = self.positions[:new_len]

    def set_segments(self, n_vision: int, n_prompt: int) -> None:
        """Mark the vision/prompt boundaries right after prefill."""
        self.segments = Segments(vision=(0, n_vision), prompt=(n_vision, n_vision + n_prompt))

    def next_position(self) -> int:
        """Absolute position the next token should occupy."""
        return 0 if self.positions.size == 0 else int(self.positions[-1]) + 1

    def clone(self) -> "ReferenceKVCache":
        """Eager deep copy of every layer."""
        out = ReferenceKVCache(self.n_layers)
        out._keys = [None if k is None else k.copy() for k in self._keys]
        out._values = [None if v is None else v.copy() for v in self._values]
        out.positions = self.positions.copy()
        out.segments = self.segments
        return out


class ReferenceHybridKVCache:
    """Hybrid context+draft KV store rebuilt by concatenate on every call."""

    def __init__(self, n_heads: int, head_dim: int) -> None:
        self.n_heads = n_heads
        self.head_dim = head_dim
        shape = (1, n_heads, 0, head_dim)
        self._ctx_k = np.empty(shape, dtype=np.float32)
        self._ctx_v = np.empty(shape, dtype=np.float32)
        self._ctx_pos = np.empty((0,), dtype=np.int64)
        self._ctx_seg = np.empty((0,), dtype=np.int8)
        self._draft_k = np.empty(shape, dtype=np.float32)
        self._draft_v = np.empty(shape, dtype=np.float32)
        self._draft_pos = np.empty((0,), dtype=np.int64)

    @property
    def context_len(self) -> int:
        """Entries in the fixed context store (projected vision + text KV)."""
        return self._ctx_k.shape[2]

    @property
    def draft_len(self) -> int:
        """Entries in the block-local draft store (cleared every block)."""
        return self._draft_k.shape[2]

    @property
    def total_len(self) -> int:
        """Total attended KV length: context plus current draft segment."""
        return self.context_len + self.draft_len

    def _check(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        positions = np.asarray(positions, dtype=np.int64)
        if k.shape != v.shape:
            raise ShapeError(f"K/V mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4 or k.shape[0] != 1 or k.shape[1] != self.n_heads or k.shape[3] != self.head_dim:
            raise ShapeError(
                f"expected (1, {self.n_heads}, T, {self.head_dim}), got {k.shape}"
            )
        if positions.shape != (k.shape[2],):
            raise ShapeError(
                f"positions shape {positions.shape} != ({k.shape[2]},)"
            )
        return k, v, positions

    def append_context(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray, segment: int) -> None:
        """Append target-provided (or projected) KV to the context store."""
        if segment not in (SEGMENT_VISION, SEGMENT_TEXT):
            raise ShapeError(f"unknown segment tag {segment}")
        k, v, positions = self._check(k, v, positions)
        self._ctx_k = np.concatenate([self._ctx_k, k], axis=2)
        self._ctx_v = np.concatenate([self._ctx_v, v], axis=2)
        self._ctx_pos = np.concatenate([self._ctx_pos, positions])
        self._ctx_seg = np.concatenate(
            [self._ctx_seg, np.full(k.shape[2], segment, dtype=np.int8)]
        )

    def append_draft(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> None:
        """Append the draft head's own KV for freshly drafted tokens."""
        k, v, positions = self._check(k, v, positions)
        self._draft_k = np.concatenate([self._draft_k, k], axis=2)
        self._draft_v = np.concatenate([self._draft_v, v], axis=2)
        self._draft_pos = np.concatenate([self._draft_pos, positions])

    def clear_draft(self) -> None:
        """Drop the block-local draft KV (called after every verify)."""
        shape = (1, self.n_heads, 0, self.head_dim)
        self._draft_k = np.empty(shape, dtype=np.float32)
        self._draft_v = np.empty(shape, dtype=np.float32)
        self._draft_pos = np.empty((0,), dtype=np.int64)

    def gather(
        self,
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(K, V, key_positions, blocked)`` via full concatenation."""
        k = np.concatenate([self._ctx_k, self._draft_k], axis=2)
        v = np.concatenate([self._ctx_v, self._draft_v], axis=2)
        positions = np.concatenate([self._ctx_pos, self._draft_pos])
        blocked = np.zeros(k.shape[2], dtype=bool)
        if disable_image_kv:
            blocked[: self.context_len] |= self._ctx_seg == SEGMENT_VISION
        if disable_text_kv:
            blocked[: self.context_len] |= self._ctx_seg == SEGMENT_TEXT
        return k, v, positions, blocked

    def segment_counts(self) -> Tuple[int, int]:
        """(n_vision, n_text) context entries — used by cost accounting."""
        n_vision = int((self._ctx_seg == SEGMENT_VISION).sum())
        return n_vision, self.context_len - n_vision
