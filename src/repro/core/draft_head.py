"""The AASD speculating module (draft head).

A single-block transformer that shares the target's embedding geometry and
generates draft tokens by attending over the *target model's last-layer KV
cache* (vision slice compressed by the :class:`KVProjector`) plus its own KV
for tokens drafted in the current block.  Trained with Target-Draft
Attention so the training-time attention pattern matches inference exactly.

Parameter budget: one attention block + one SwiGLU + tied embedding head —
roughly 1/15 of the sim-7b target, mirroring the paper's lightweight module
versus the 112M independent drafts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..decoding.tree import TreeDraft
from ..errors import ConfigError, ShapeError
from ..models.llama import MiniLlama
from ..nn import functional as F
from ..nn.attention import (
    MultiHeadAttention,
    attend_data,
    causal_mask,
    merge_heads,
    split_heads,
)
from ..nn.kernels import (
    linear_data,
    merge_heads_data,
    rmsnorm_data,
    rope_data,
    split_heads_data,
    swiglu_data,
)
from ..nn.layers import Embedding, Linear
from ..nn.module import Module
from ..nn.normalization import RMSNorm
from ..nn.rope import RotaryEmbedding, apply_rope
from ..nn.tensor import Tensor, concat, is_grad_enabled, matmul_data
from ..nn.transformer import SwiGLU
from ..robustness.guards import ensure_finite
from ..utils.rng import derive
from .hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from .kv_projector import KVProjector
from .td_attention import target_draft_attention

__all__ = ["DraftHeadConfig", "AASDDraftHead"]


@dataclass(frozen=True)
class DraftHeadConfig:
    """Shape and ablation switches of the speculating module."""

    vocab_size: int
    dim: int                 # must equal the target backbone dim
    n_heads: int             # must equal the target backbone heads
    mlp_hidden: int = 192
    n_vision_tokens: int = 36
    k_compressed: int = 8
    use_kv_projector: bool = True   # Table 2 ablation switch
    use_target_kv: bool = True      # Figure 3 ablation switch
    rope_base: float = 10000.0

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ConfigError(f"dim {self.dim} not divisible by n_heads {self.n_heads}")
        if (self.dim // self.n_heads) % 2 != 0:
            raise ConfigError("head_dim must be even for RoPE")
        if self.use_kv_projector and not 0 < self.k_compressed <= self.n_vision_tokens:
            raise ConfigError(
                f"k_compressed must be in (0, {self.n_vision_tokens}], got {self.k_compressed}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head attention width (``dim / n_heads``)."""
        return self.dim // self.n_heads

    @classmethod
    def for_target(cls, target_llama_config, n_vision_tokens: int, **overrides) -> "DraftHeadConfig":
        """Derive a head config matching a target backbone's KV geometry."""
        return cls(
            vocab_size=target_llama_config.vocab_size,
            dim=target_llama_config.dim,
            n_heads=target_llama_config.n_heads,
            n_vision_tokens=n_vision_tokens,
            rope_base=target_llama_config.rope_base,
            **overrides,
        )


class AASDDraftHead(Module):
    """One hybrid-attention transformer block + tied LM head."""

    #: The engine's packed batched rounds (``step_batch``) may drive this
    #: head via :meth:`step_packed`.  Wrappers that intercept per-request
    #: ``step`` calls (e.g. the fault injector) advertise ``False`` so the
    #: engine falls back to per-session stepping.
    supports_packed = True

    #: The engine's tree-speculation rounds may drive this head via
    #: :meth:`draft_tree`.  Wrappers that intercept per-request ``step``
    #: calls (e.g. the fault injector) advertise ``False`` so the engine
    #: keeps the linear draft path, where interception works.
    supports_tree = True

    def __init__(self, config: DraftHeadConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else derive(0, "draft-head-init")
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=gen)
        self.rope = RotaryEmbedding(config.head_dim, base=config.rope_base)
        self.attn_norm = RMSNorm(config.dim)
        self.wq = Linear(config.dim, config.dim, bias=False, rng=gen)
        self.wk = Linear(config.dim, config.dim, bias=False, rng=gen)
        self.wv = Linear(config.dim, config.dim, bias=False, rng=gen)
        self.wo = Linear(config.dim, config.dim, bias=False, rng=gen)
        self.mlp_norm = RMSNorm(config.dim)
        self.mlp = SwiGLU(config.dim, config.mlp_hidden, rng=gen)
        self.out_norm = RMSNorm(config.dim)
        self.projector = (
            KVProjector(config.n_vision_tokens, config.k_compressed, rng=gen)
            if (config.use_kv_projector and config.use_target_kv)
            else None
        )

    # ------------------------------------------------------------------
    def init_from_target(self, target_llama: MiniLlama) -> None:
        """Copy the target's embedding table (shared token geometry)."""
        if target_llama.embed.weight.data.shape != self.embed.weight.data.shape:
            raise ShapeError("target embedding shape does not match draft head config")
        self.embed.weight.data = target_llama.embed.weight.data.copy()

    def lm_head(self, hidden: Tensor) -> Tensor:
        """Project hidden states to vocab logits (tied to the embedding)."""
        return hidden @ self.embed.weight.swapaxes(0, 1)

    def qkv(self, x: Tensor, positions: np.ndarray) -> Tuple[Tensor, Tensor, Tensor]:
        """Project normed activations to RoPE'd per-head q/k/v."""
        q = split_heads(self.wq(x), self.config.n_heads)
        k = split_heads(self.wk(x), self.config.n_heads)
        v = split_heads(self.wv(x), self.config.n_heads)
        cos, sin = self.rope.tables(np.asarray(positions, dtype=np.int64))
        return apply_rope(q, cos, sin), apply_rope(k, cos, sin), v

    def compress_vision(self, k_vision, v_vision) -> Tuple[Tensor, Tensor]:
        """Apply the KV Projector (or pass raw vision KV through)."""
        if self.projector is not None:
            return self.projector(k_vision, v_vision)
        return Tensor(np.asarray(k_vision)), Tensor(np.asarray(v_vision))

    # ------------------------------------------------------------------
    # Training forward (Target-Draft Attention)
    # ------------------------------------------------------------------
    def forward_train(
        self,
        text_ids: np.ndarray,
        target_k_text: Optional[np.ndarray],
        target_v_text: Optional[np.ndarray],
        k_vision: Optional[np.ndarray],
        v_vision: Optional[np.ndarray],
        s: int = 1,
        position_offset: int = 0,
    ) -> Tensor:
        """Teacher-forced pass returning next-token logits ``(B, T, vocab)``.

        ``target_k_text``/``target_v_text`` are the target's last-layer text
        KV (constants); ``k_vision``/``v_vision`` the last-layer vision KV
        fed to the projector.  With ``use_target_kv=False`` both are ignored
        and the head trains as a plain causal self-attention block.
        """
        text_ids = np.asarray(text_ids, dtype=np.int64)
        if text_ids.ndim == 1:
            text_ids = text_ids[None, :]
        b, t = text_ids.shape
        positions = position_offset + np.arange(t, dtype=np.int64)

        x = self.embed(text_ids)
        h = self.attn_norm(x)
        q, k, v = self.qkv(h, positions)

        if self.config.use_target_kv:
            if target_k_text is None or target_v_text is None:
                raise ShapeError("use_target_kv=True requires target text KV")
            k_static = v_static = None
            if k_vision is not None:
                k_static, v_static = self.compress_vision(k_vision, v_vision)
            attn = target_draft_attention(
                q,
                Tensor(np.asarray(target_k_text)),
                Tensor(np.asarray(target_v_text)),
                k,
                v,
                s=s,
                k_static=k_static,
                v_static=v_static,
            )
        else:
            blocked = causal_mask(positions, positions)
            attn = MultiHeadAttention.attend(q, k, v, blocked=blocked)

        x = x + self.wo(merge_heads(attn))
        x = x + self.mlp(self.mlp_norm(x))
        return self.lm_head(self.out_norm(x))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def build_context(self, target_cache, hybrid: HybridKVCache) -> None:
        """Populate the hybrid cache from the target's last-layer KV.

        Vision KV is compressed by the projector (positions ``0..k-1``,
        which is safe because every text query position exceeds them);
        text KV keeps its true absolute positions.
        """
        if not self.config.use_target_kv:
            raise ShapeError("build_context is only valid when use_target_kv=True")
        k_last, v_last = target_cache.last_layer()
        n_vis = target_cache.segments.n_vision
        k_vis = k_last[:, :, :n_vis, :]
        v_vis = v_last[:, :, :n_vis, :]
        k_cmp, v_cmp = self.compress_vision(k_vis, v_vis)
        hybrid.append_context(
            k_cmp.data,
            v_cmp.data,
            np.arange(k_cmp.shape[2], dtype=np.int64),
            SEGMENT_VISION,
        )
        hybrid.append_context(
            k_last[:, :, n_vis:, :],
            v_last[:, :, n_vis:, :],
            target_cache.positions[n_vis:],
            SEGMENT_TEXT,
        )

    def self_encode(self, token_ids: np.ndarray, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compute the head's own K/V for tokens (no attention needed).

        Because the head is a single block, its keys/values depend only on
        each token's embedding — so priming a self-context (the
        ``use_target_kv=False`` ablation) is one parallel projection.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64).reshape(1, -1)
        h = self.attn_norm(self.embed(token_ids))
        _, k, v = self.qkv(h, positions)
        return k.data, v.data

    def step(
        self,
        token_id: int,
        position: int,
        hybrid: HybridKVCache,
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """One draft step: returns next-token logits ``(vocab,)``.

        Appends the token's own K/V to the hybrid cache's draft segment
        (the query attends to it, matching T-D Attention's ``j = i`` rule).
        ``request_id`` identifies the requesting session; the head itself
        ignores it, but wrappers (fault injectors, per-request telemetry)
        key their behavior on it.
        """
        del request_id
        positions = np.asarray([position], dtype=np.int64)
        x = self.embed(np.asarray([[token_id]], dtype=np.int64))
        h = self.attn_norm(x)
        q, k, v = self.qkv(h, positions)

        ctx_k, ctx_v, key_pos, key_blocked = hybrid.gather(
            disable_image_kv=disable_image_kv, disable_text_kv=disable_text_kv
        )
        k_all = concat([Tensor(ctx_k), k], axis=2)
        v_all = concat([Tensor(ctx_v), v], axis=2)
        # repro: allow[hotpath-reach] -- O(context) int/bool mask bookkeeping per draft step, not KV storage
        all_pos = np.concatenate([key_pos, positions])
        blocked = causal_mask(positions, all_pos)
        # repro: allow[hotpath-reach] -- O(context) bool mask row, rebuilt per step by design
        blocked = blocked | np.concatenate([key_blocked, [False]])[None, :]

        attn = MultiHeadAttention.attend(q, k_all, v_all, blocked=blocked)
        x = x + self.wo(merge_heads(attn))
        x = x + self.mlp(self.mlp_norm(x))
        logits = self.lm_head(self.out_norm(x))

        hybrid.append_draft(k.data, v.data, positions)
        return logits.data[0, -1]

    # ------------------------------------------------------------------
    # Tree speculation (repro.decoding.tree; docs/kernels.md)
    # ------------------------------------------------------------------
    def _branch_width(self, logits: np.ndarray, max_branch: int,
                      entropy_scale: float) -> int:
        """Entropy-adapted branch width for one tree expansion (DREAM-style).

        High draft-head entropy means the argmax continuation is unsure,
        so hedging across more children is worth the verify rows; a
        confident head keeps the tree narrow.  The width is
        ``1 + floor(H / entropy_scale)`` (H in nats, from the raw softmax
        over the float64 logits), clamped to ``[1, max_branch]`` — always
        at least the argmax child, so a ``max_branch`` of 1 degenerates
        to the linear chain exactly.
        """
        if max_branch <= 1:
            return 1
        z = np.asarray(logits, dtype=np.float64)
        z = z - z.max()
        p = np.exp(z)
        p /= p.sum()
        entropy = float(-(p * np.log(np.maximum(p, 1e-300))).sum())
        return 1 + min(max_branch - 1, int(entropy / entropy_scale))

    def _tree_step(
        self,
        token_id: int,
        position: int,
        hybrid: HybridKVCache,
        ancestor_rows: Tuple[int, ...],
        disable_image_kv: bool,
        disable_text_kv: bool,
    ) -> np.ndarray:
        """One tree-node expansion: :meth:`step` restricted to ancestors.

        Identical to :meth:`step` except that of the hybrid cache's draft
        segment only ``ancestor_rows`` (the node's root path, in draft-row
        order) are attended — sibling branches are excluded by *selection*
        rather than masking, which also keeps same-position sibling keys
        out of the causal rule's reach.  When the ancestors are the entire
        draft segment (every chain node) the gathered views are used
        as-is, making the op sequence bitwise identical to :meth:`step`.
        Appends the expanded token's own K/V as the next draft row, so
        DFS-preorder expansion keeps draft-row order equal to node order.
        """
        positions = np.asarray([position], dtype=np.int64)
        x = self.embed(np.asarray([[token_id]], dtype=np.int64))
        h = self.attn_norm(x)
        q, k, v = self.qkv(h, positions)

        ctx_k, ctx_v, key_pos, key_blocked = hybrid.gather(
            disable_image_kv=disable_image_kv, disable_text_kv=disable_text_kv
        )
        rows = list(ancestor_rows)
        if rows == list(range(hybrid.draft_len)):
            sel_k, sel_v = ctx_k, ctx_v
            sel_pos, sel_blocked = key_pos, key_blocked
        else:
            index = np.concatenate([
                np.arange(hybrid.context_len, dtype=np.int64),
                hybrid.context_len + np.asarray(rows, dtype=np.int64),
            ])
            sel_k = np.asarray(ctx_k)[:, :, index, :]
            sel_v = np.asarray(ctx_v)[:, :, index, :]
            sel_pos = np.asarray(key_pos)[index]
            sel_blocked = np.asarray(key_blocked)[index]
        k_all = concat([Tensor(sel_k), k], axis=2)
        v_all = concat([Tensor(sel_v), v], axis=2)
        all_pos = np.concatenate([sel_pos, positions])
        blocked = causal_mask(positions, all_pos)
        blocked = blocked | np.concatenate([sel_blocked, [False]])[None, :]

        attn = MultiHeadAttention.attend(q, k_all, v_all, blocked=blocked)
        x = x + self.wo(merge_heads(attn))
        x = x + self.mlp(self.mlp_norm(x))
        logits = self.lm_head(self.out_norm(x))

        hybrid.append_draft(k.data, v.data, positions)
        return logits.data[0, -1]

    def draft_tree(
        self,
        token_id: int,
        position: int,
        hybrid: HybridKVCache,
        *,
        gamma: int,
        max_branch: int = 2,
        max_nodes: int = 12,
        entropy_scale: float = 1.0,
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
        request_id: Optional[str] = None,
        on_step=None,
    ):
        """Draft a candidate tree below the anchor ``token_id``; DFS preorder.

        Expansion: one :meth:`_tree_step` forward per expanded node (anchor
        first) yields that node's continuation logits; the top-``w`` tokens
        (``w`` from :meth:`_branch_width`, stable-descending order so rank
        0 is the argmax) become its children, each created and then
        immediately descended into — true DFS preorder, so node order,
        draft-row order, and (for ``max_branch=1``) the linear chain's
        order all coincide.  Nodes at depth ``gamma`` are leaves and are
        never expanded, mirroring the linear path where the last drafted
        token's KV is never computed.  The node budget is
        ``max(max_nodes, gamma)`` — a tree is never smaller than the
        linear chain it replaces.

        ``on_step(kv_len)`` is invoked immediately *before* each expansion
        with the number of keys that forward attends (context + ancestors
        + itself), so callers can charge draft cost in the linear path's
        charge-then-step order; for a chain the sequence of ``kv_len``
        values equals the linear path's ``total_len + 1`` charges exactly.
        ``request_id`` is accepted for wrapper parity with :meth:`step`
        and ignored.

        Returns a :class:`repro.decoding.tree.TreeDraft`.
        """
        del request_id
        budget = max(int(max_nodes), int(gamma))
        tokens: List[int] = []
        parents: List[int] = []
        depths: List[int] = []

        def grow(token: int, depth: int, parent_idx: int,
                 ancestor_rows: Tuple[int, ...]) -> None:
            """Expand one node and recurse into its children, DFS preorder."""
            if on_step is not None:
                on_step(hybrid.context_len + len(ancestor_rows) + 1)
            logits = self._tree_step(
                token, position + depth, hybrid, ancestor_rows,
                disable_image_kv, disable_text_kv,
            )
            ensure_finite(logits, "draft logits")
            my_row = hybrid.draft_len - 1
            width = self._branch_width(logits, max_branch, entropy_scale)
            order = np.argsort(-np.asarray(logits, dtype=np.float64), kind="stable")
            for rank in range(width):
                if len(tokens) >= budget:
                    break
                child_token = int(order[rank])
                child_idx = len(tokens)
                tokens.append(child_token)
                parents.append(parent_idx)
                depths.append(depth + 1)
                if depth + 1 < gamma and len(tokens) < budget:
                    grow(child_token, depth + 1, child_idx,
                         ancestor_rows + (my_row,))

        grow(int(token_id), 0, -1, ())
        return TreeDraft(
            tokens=tuple(tokens), parents=tuple(parents), depths=tuple(depths)
        )

    def step_packed(
        self,
        token_ids: Sequence[int],
        positions: Sequence[int],
        hybrids: Sequence[HybridKVCache],
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
        request_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> List[np.ndarray]:
        """One *lockstep* draft step for B sessions; per-session logits.

        Each session feeds exactly one token, so the batch runs as a
        ``(B, 1, D)`` tensor: the embedding gather, norms, q/k/v/o
        projections, RoPE, MLP, and LM head each execute as **one** numpy
        call instead of B.  Because numpy evaluates a ``(B, 1, K) @ (K, N)``
        matmul by looping the batch axis, every slice still takes the
        single-row gemv kernel — bitwise identical to B solo :meth:`step`
        calls (the M=1 side of the packing-stability contract in
        :mod:`repro.nn.ragged`).  Attention runs per session over each
        hybrid cache's zero-copy gather view, again at exactly the solo
        shapes.

        When no ablation flag is set the attention mask is skipped
        outright: during draft steps every gathered key position is
        strictly below the query position (compressed vision keys sit at
        ``0..k-1``, committed-text keys below the last committed
        position, draft keys at earlier draft positions), so the solo
        path's causal+segment mask is all-``False`` — and
        ``masked_fill`` with an all-``False`` mask is a bitwise identity.
        The packed-vs-solo identity tests would catch any violation.

        Appends each session's fresh draft K/V to its own hybrid cache,
        exactly as :meth:`step` does.  Returns one ``(vocab,)`` logits
        row per session, in input order.
        """
        del request_ids
        if not (len(token_ids) == len(positions) == len(hybrids)):
            raise ShapeError(
                f"step_packed arity mismatch: {len(token_ids)} tokens, "
                f"{len(positions)} positions, {len(hybrids)} caches"
            )
        b = len(token_ids)
        pos = np.asarray(positions, dtype=np.int64)
        ids = np.asarray(token_ids, dtype=np.int64).reshape(b, 1)
        ablated = disable_image_kv or disable_text_kv
        fast = not is_grad_enabled()

        def masks():
            rows = []
            for i, hybrid in enumerate(hybrids):
                ctx_k, ctx_v, key_pos, key_blocked = hybrid.gather(
                    disable_image_kv=disable_image_kv,
                    disable_text_kv=disable_text_kv,
                )
                if ablated:
                    # repro: allow[hotpath-reach] -- O(context) mask bookkeeping on the ablation path only
                    all_pos = np.concatenate([key_pos, pos[i : i + 1]])
                    blocked = causal_mask(pos[i : i + 1], all_pos)
                    # repro: allow[hotpath-reach] -- O(context) bool mask row on the ablation path only
                    blocked = blocked | np.concatenate(
                        [key_blocked, [False]]
                    )[None, :]
                else:
                    blocked = None
                rows.append((ctx_k, ctx_v, blocked))
            return rows

        if fast:
            xd = self.embed.weight.data[ids]
            h = rmsnorm_data(xd, self.attn_norm.weight.data, self.attn_norm.eps)
            n_heads = self.config.n_heads
            qd = split_heads_data(linear_data(h, self.wq.weight.data), n_heads)
            kd = split_heads_data(linear_data(h, self.wk.weight.data), n_heads)
            vd = split_heads_data(linear_data(h, self.wv.weight.data), n_heads)
            cos, sin = self.rope.tables(pos)
            cos4, sin4 = cos[:, None, None, :], sin[:, None, None, :]
            qd = rope_data(qd, cos4, sin4)
            kd = rope_data(kd, cos4, sin4)
            if not ablated:
                # Append-then-view: the hybrid cache's arena views then
                # hold exactly (context | own key) — the same values the
                # concat would build — and each per-head 2-D slice of the
                # view is contiguous, so the gemms run copy-free.  Solo
                # identity is unaffected (post-step cache state matches,
                # and a round fault rolls the draft segment back).
                for i, hybrid in enumerate(hybrids):
                    hybrid.append_draft(
                        kd[i : i + 1], vd[i : i + 1], pos[i : i + 1]
                    )
                outs = []
                for i, hybrid in enumerate(hybrids):
                    k_all, v_all, _, _ = hybrid.gather()
                    outs.append(
                        attend_data(
                            qd[i : i + 1],
                            np.asarray(k_all),
                            np.asarray(v_all),
                            None,
                        )
                    )
            else:
                outs = [
                    attend_data(
                        qd[i : i + 1],
                        # repro: allow[hotpath-reach] -- ragged-row fallback assembles per-row K once per step
                        np.concatenate(
                            [np.asarray(ctx_k), kd[i : i + 1]], axis=2
                        ),
                        # repro: allow[hotpath-reach] -- ragged-row fallback assembles per-row V once per step
                        np.concatenate(
                            [np.asarray(ctx_v), vd[i : i + 1]], axis=2
                        ),
                        blocked,
                    )
                    for i, (ctx_k, ctx_v, blocked) in enumerate(masks())
                ]
            # repro: allow[hotpath-reach] -- reassembles B per-row outputs into one batch tensor, O(batch) per step
            attn_d = np.concatenate(outs, axis=0) if b > 1 else outs[0]
            # residuals accumulate in place into the fresh branch output
            # (bitwise equal: IEEE addition is commutative)
            delta = linear_data(merge_heads_data(attn_d), self.wo.weight.data)
            delta += xd
            xd = delta
            mlp = self.mlp
            delta = swiglu_data(
                rmsnorm_data(xd, self.mlp_norm.weight.data, self.mlp_norm.eps),
                mlp.gate.weight.data, mlp.up.weight.data, mlp.down.weight.data,
            )
            delta += xd
            xd = delta
            normed = rmsnorm_data(xd, self.out_norm.weight.data, self.out_norm.eps)
            logits_d = matmul_data(normed, self.embed.weight.data.swapaxes(0, 1))
            if ablated:
                for i, hybrid in enumerate(hybrids):
                    hybrid.append_draft(
                        kd[i : i + 1], vd[i : i + 1], pos[i : i + 1]
                    )
            return [logits_d[i, -1] for i in range(b)]

        x = self.embed(ids)
        h = self.attn_norm(x)
        q = split_heads(self.wq(h), self.config.n_heads)
        k = split_heads(self.wk(h), self.config.n_heads)
        v = split_heads(self.wv(h), self.config.n_heads)
        cos, sin = self.rope.tables(pos)
        cos4, sin4 = cos[:, None, None, :], sin[:, None, None, :]
        q = apply_rope(q, cos4, sin4)
        k = apply_rope(k, cos4, sin4)

        outs = [
            MultiHeadAttention.attend(
                q[i : i + 1],
                concat([Tensor(ctx_k), k[i : i + 1]], axis=2),
                concat([Tensor(ctx_v), v[i : i + 1]], axis=2),
                blocked=blocked,
            )
            for i, (ctx_k, ctx_v, blocked) in enumerate(masks())
        ]
        x = x + self.wo(merge_heads(concat(outs, axis=0)))
        x = x + self.mlp(self.mlp_norm(x))
        logits = self.lm_head(self.out_norm(x))

        for i, hybrid in enumerate(hybrids):
            hybrid.append_draft(
                k.data[i : i + 1], v.data[i : i + 1], pos[i : i + 1]
            )
        return [logits.data[i, -1] for i in range(b)]
