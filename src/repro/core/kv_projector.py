"""Vision KV Projector: sequence-dimension compression of the image KV.

Paper Eq. (3): ``K* = W_K K_I`` and ``V* = W_V V_I`` with
``W_K, W_V in R^{k x n}`` — learned projections over the *sequence*
dimension that squeeze the n vision-token KV pairs cached by the target
model into k compressed pairs (the paper uses k=64 for LLaVA's 576 vision
tokens, removing ~90% of the redundancy; we default to k=8 of 36 at
simulator scale).

The projection is shared across attention heads and across the K/V feature
dimension, exactly as the matrix form in the paper implies.  Weights are
initialised to block average-pooling plus noise, a good inductive bias for a
compressor.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError, ShapeError
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor, as_tensor
from ..utils.rng import derive

__all__ = ["KVProjector"]


def _pooling_init(k: int, n: int, rng: np.random.Generator, noise: float = 0.02) -> np.ndarray:
    """Block average-pooling matrix with Gaussian perturbation."""
    weight = np.zeros((k, n), dtype=np.float32)
    edges = np.linspace(0, n, k + 1).astype(int)
    for row, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        hi = max(hi, lo + 1)
        weight[row, lo:hi] = 1.0 / (hi - lo)
    return weight + (rng.standard_normal((k, n)) * noise).astype(np.float32)


class KVProjector(Module):
    """Compress ``(B, H, n, Dh)`` vision KV into ``(B, H, k, Dh)``."""

    def __init__(
        self,
        n_vision_tokens: int,
        k_compressed: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0 < k_compressed <= n_vision_tokens:
            raise ConfigError(
                f"k_compressed must be in (0, {n_vision_tokens}], got {k_compressed}"
            )
        gen = rng if rng is not None else derive(0, "kv-projector-init")
        self.n_vision_tokens = n_vision_tokens
        self.k_compressed = k_compressed
        self.w_k = Parameter(_pooling_init(k_compressed, n_vision_tokens, gen), name="w_k")
        self.w_v = Parameter(_pooling_init(k_compressed, n_vision_tokens, gen), name="w_v")

    @property
    def compression_ratio(self) -> float:
        """Fraction of vision KV entries removed (paper cites ~90%)."""
        return 1.0 - self.k_compressed / self.n_vision_tokens

    def forward(self, k_vision, v_vision) -> Tuple[Tensor, Tensor]:
        """Apply Eq. (3) to the vision slice of the target's last-layer KV.

        Accepts tensors or numpy arrays of shape ``(B, H, n, Dh)``.
        """
        k_vision = as_tensor(k_vision)
        v_vision = as_tensor(v_vision)
        if k_vision.shape[2] != self.n_vision_tokens:
            raise ShapeError(
                f"expected {self.n_vision_tokens} vision tokens, got {k_vision.shape[2]}"
            )
        return self.w_k @ k_vision, self.w_v @ v_vision
