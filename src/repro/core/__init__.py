"""AASD core: KV projector, T-D attention, speculating module, engine."""

from .draft_head import AASDDraftHead, DraftHeadConfig
from .engine import AASDEngine, AASDEngineConfig, DecodeSession, StepReport
from .hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from .kv_projector import KVProjector
from .td_attention import (
    naive_target_draft_attention,
    target_draft_attention,
    td_attention_masks,
)

__all__ = [
    "KVProjector",
    "td_attention_masks",
    "target_draft_attention",
    "naive_target_draft_attention",
    "HybridKVCache",
    "SEGMENT_VISION",
    "SEGMENT_TEXT",
    "AASDDraftHead",
    "DraftHeadConfig",
    "AASDEngine",
    "AASDEngineConfig",
    "DecodeSession",
    "StepReport",
]
