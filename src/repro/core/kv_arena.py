"""Public surface of the zero-copy KV arena storage layer.

The implementation lives in :mod:`repro.utils.arena` so that
:mod:`repro.models.kv_cache` (a layer *below* ``repro.core``) can build on
it without an import cycle; this module is the documented entry point the
rest of the stack imports from.  See the implementation module and
``docs/performance.md`` for the design: amortized-doubling growth, cached
zero-copy views, pointer-decrement rollback, and copy-on-write forking.

This module also owns :class:`BlockTable`, the batch-level gather view
the packed ragged-batch kernels (``docs/kernels.md``) index per-request
KV through: one table wraps B per-request caches and hands the fused
forward per-layer key/value *views* plus cu-seqlen offsets, so assembling
a batch's KV costs zero copies and O(B) Python, not O(B·T).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.ragged import cu_seqlens as _cu_seqlens
from ..utils.arena import MIN_CAPACITY, Arena, ArenaStats, combined_stats

__all__ = [
    "Arena",
    "ArenaStats",
    "MIN_CAPACITY",
    "combined_stats",
    "BlockTable",
]


class BlockTable:
    """Batch-level zero-copy gather view over per-request KV caches.

    A ``BlockTable`` wraps an ordered sequence of per-request caches —
    either layered target caches (``KVCache`` / ``ReferenceKVCache``:
    anything with ``seq_len``, ``layer(i)`` and ``positions``) or draft
    hybrid caches (``HybridKVCache``-likes with ``total_len`` and
    ``gather``) — and exposes the batch as ragged *blocks*: request
    ``i``'s KV is block ``i``, addressed by the same cu-seqlen offsets
    that index the packed activation tensor.

    Nothing is copied at construction or on access: every accessor
    re-fetches the underlying cache views, so arena mutations between
    rounds — appends, ``truncate``, and the pointer-decrement
    ``clear_draft`` rollback — are always visible through the table
    (pinned by ``tests/core/test_ragged_serving.py``).  The only copying
    method is :meth:`packed_layer`, the explicitly fused gather behind
    the exact fused entry mode of ``ragged_attend`` (which builds its
    masks internally but still attends per segment — see
    ``repro.nn.attention``) and the tree-verification path.
    """

    def __init__(self, caches: Sequence[object]) -> None:
        """Wrap ``caches`` (one per request, batch order) without copying."""
        self._caches = list(caches)

    @property
    def caches(self) -> Tuple[object, ...]:
        """The wrapped per-request caches, in batch order."""
        return tuple(self._caches)

    def __len__(self) -> int:
        """Number of requests (blocks) in the table."""
        return len(self._caches)

    def seq_lens(self) -> List[int]:
        """Current per-request KV lengths (``seq_len`` or ``total_len``)."""
        return [
            int(c.seq_len) if hasattr(c, "seq_len") else int(c.total_len)
            for c in self._caches
        ]

    def cu_seqlens(self) -> np.ndarray:
        """Cu-seqlen offsets over the current per-request KV lengths."""
        return _cu_seqlens(self.seq_lens())

    def layer_blocks(
        self, layer_idx: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Per-request ``(keys, values)`` views for one layer (no copies).

        Only meaningful over layered caches; entry ``i`` of each list is
        request ``i``'s ``(1, H, T_i, Dh)`` arena view for ``layer_idx``.
        """
        keys: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for cache in self._caches:
            k, v = cache.layer(layer_idx)
            keys.append(k)
            values.append(v)
        return keys, values

    def position_rows(self) -> List[np.ndarray]:
        """Per-request absolute key positions (layered caches)."""
        return [np.asarray(c.positions) for c in self._caches]

    def gather_rows(
        self, *, disable_image_kv: bool = False, disable_text_kv: bool = False
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Per-request hybrid gathers ``(k, v, key_positions, key_blocked)``.

        Only meaningful over hybrid caches; delegates to each cache's
        ``gather`` with the ablation flags, returning the zero-copy
        unified-lane views the draft head attends over.
        """
        return [
            c.gather(
                disable_image_kv=disable_image_kv, disable_text_kv=disable_text_kv
            )
            for c in self._caches
        ]

    def packed_layer(
        self, layer_idx: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused ``(keys, values, key_positions)`` for one layer (copies).

        Concatenates every request's layer views into single
        ``(1, H, sum_k, Dh)`` arrays plus the flat key-position vector —
        the input shape of fused ragged attention
        (:func:`repro.nn.attention.ragged_attend` with ``fused=True``).
        The bitwise-exact serving path never calls this; it attends per
        block via :meth:`layer_blocks`.
        """
        keys, values = self.layer_blocks(layer_idx)
        positions = self.position_rows()
        empty = np.zeros(0, dtype=np.int64)
        return (
            np.concatenate(keys, axis=2) if keys else np.zeros((1, 0, 0, 0)),
            np.concatenate(values, axis=2) if values else np.zeros((1, 0, 0, 0)),
            np.concatenate(positions) if positions else empty,
        )
