"""Public surface of the zero-copy KV arena storage layer.

The implementation lives in :mod:`repro.utils.arena` so that
:mod:`repro.models.kv_cache` (a layer *below* ``repro.core``) can build on
it without an import cycle; this module is the documented entry point the
rest of the stack imports from.  See the implementation module and
``docs/performance.md`` for the design: amortized-doubling growth, cached
zero-copy views, pointer-decrement rollback, and copy-on-write forking.
"""

from __future__ import annotations

from ..utils.arena import MIN_CAPACITY, Arena, ArenaStats, combined_stats

__all__ = ["Arena", "ArenaStats", "MIN_CAPACITY", "combined_stats"]
