"""Hybrid KV cache: target-provided context + the draft head's own KV.

During AASD inference the speculating module attends over two stores:

* the **context**: compressed vision KV plus the target model's last-layer
  text KV for every committed token except the newest (grows after each
  verify step, fed by the verification forward's KV by-product);
* the **draft segment**: the head's own KV for tokens drafted in the
  current block (cleared after each verify).

Context entries carry a segment tag (vision/text) so the Figure 4 ablations
can mask a modality at attention time.

Storage is a single :class:`~repro.utils.arena.Arena` lane pair per array
with the context occupying ``[0, context_len)`` and the draft segment the
tail ``[context_len, total_len)``.  Because the engine only ever appends
context while the draft segment is empty (cleared after every verify),
both lanes share one buffer, and the old per-``gather`` rebuild — five
``np.concatenate`` calls over the *entire* context on every draft step —
becomes a cached zero-copy view:

* ``append_draft`` memcpys one token into slack,
* ``clear_draft`` is a pointer decrement,
* ``gather`` returns cached views plus a memoized blocked-mask row,
  invalidated only by mutation.

:class:`repro.core.reference.ReferenceHybridKVCache` preserves the old
implementation as the executable spec the property tests compare against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..utils.arena import Arena, ArenaStats

__all__ = ["HybridKVCache", "SEGMENT_VISION", "SEGMENT_TEXT"]

SEGMENT_VISION = 0
SEGMENT_TEXT = 1


class HybridKVCache:
    """Numpy KV store for one AASD generation session (batch size 1).

    Arrays returned by :meth:`gather` alias arena storage: they are valid
    until the next mutating call (``append_context`` / ``append_draft`` /
    ``clear_draft``), after which their contents are undefined.  The
    engine consumes them within a single draft step, which is what makes
    the zero-copy contract safe.
    """

    def __init__(self, n_heads: int, head_dim: int) -> None:
        self.n_heads = n_heads
        self.head_dim = head_dim
        self._stats = ArenaStats()
        item = (1, n_heads, 0, head_dim)
        self._k = Arena(item, axis=2, dtype=np.float32, stats=self._stats)
        self._v = Arena(item, axis=2, dtype=np.float32, stats=self._stats)
        self._pos = Arena((0,), axis=0, dtype=np.int64, stats=self._stats)
        self._seg = Arena((0,), axis=0, dtype=np.int8, stats=self._stats)
        self._ctx_len = 0
        self._n_vision = 0
        self._blocked: Dict[Tuple[bool, bool], np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def context_len(self) -> int:
        """Entries in the fixed context store (projected vision + text KV)."""
        return self._ctx_len

    @property
    def draft_len(self) -> int:
        """Entries in the block-local draft store (cleared every block)."""
        return len(self._k) - self._ctx_len

    @property
    def total_len(self) -> int:
        """Total attended KV length: context plus current draft segment."""
        return len(self._k)

    def _check(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        positions = np.asarray(positions, dtype=np.int64)
        if k.shape != v.shape:
            raise ShapeError(f"K/V mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4 or k.shape[0] != 1 or k.shape[1] != self.n_heads or k.shape[3] != self.head_dim:
            raise ShapeError(
                f"expected (1, {self.n_heads}, T, {self.head_dim}), got {k.shape}"
            )
        if positions.shape != (k.shape[2],):
            raise ShapeError(
                f"positions shape {positions.shape} != ({k.shape[2]},)"
            )
        return k, v, positions

    # ------------------------------------------------------------------
    def append_context(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray, segment: int) -> None:
        """Append target-provided (or projected) KV to the context store.

        When a draft segment is live (not the engine's pattern, but legal
        API), the few draft tokens are lifted out, the context extended,
        and the draft re-appended behind it — O(draft) extra copy, never
        O(context).
        """
        if segment not in (SEGMENT_VISION, SEGMENT_TEXT):
            raise ShapeError(f"unknown segment tag {segment}")
        k, v, positions = self._check(k, v, positions)
        stashed = None
        if self.draft_len:
            stashed = (
                self._k.view()[:, :, self._ctx_len:, :].copy(),
                self._v.view()[:, :, self._ctx_len:, :].copy(),
                self._pos.view()[self._ctx_len:].copy(),
            )
            self._k.truncate(self._ctx_len)
            self._v.truncate(self._ctx_len)
            self._pos.truncate(self._ctx_len)
        self._k.append(k)
        self._v.append(v)
        self._pos.append(positions)
        self._seg.append(np.full(k.shape[2], segment, dtype=np.int8))
        self._ctx_len += k.shape[2]
        if segment == SEGMENT_VISION:
            self._n_vision += k.shape[2]
        if stashed is not None:
            self._k.append(stashed[0])
            self._v.append(stashed[1])
            self._pos.append(stashed[2])
        self._blocked.clear()

    def append_draft(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> None:
        """Append the draft head's own KV for freshly drafted tokens."""
        k, v, positions = self._check(k, v, positions)
        self._k.append(k)
        self._v.append(v)
        self._pos.append(positions)
        self._blocked.clear()

    def clear_draft(self) -> None:
        """Drop the block-local draft KV (called after every verify).

        A pointer decrement on the shared lane — rollback after a
        rejected draft block costs nothing.
        """
        if self.draft_len:
            self._k.truncate(self._ctx_len)
            self._v.truncate(self._ctx_len)
            self._pos.truncate(self._ctx_len)
            self._blocked.clear()

    # ------------------------------------------------------------------
    def gather(
        self,
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(K, V, key_positions, blocked)`` over context + draft.

        ``blocked`` is a per-key boolean row implementing the modality
        ablations; the draft segment is never blocked.  All four arrays
        are zero-copy cached views/rows: repeated calls between mutations
        return the same objects without touching the data.
        """
        key = (disable_image_kv, disable_text_kv)
        blocked = self._blocked.get(key)
        if blocked is None:
            blocked = np.zeros(self.total_len, dtype=bool)
            if disable_image_kv or disable_text_kv:
                seg = self._seg.view()[: self._ctx_len]
                if disable_image_kv:
                    blocked[: self._ctx_len] |= seg == SEGMENT_VISION
                if disable_text_kv:
                    blocked[: self._ctx_len] |= seg == SEGMENT_TEXT
            self._blocked[key] = blocked
        return self._k.view(), self._v.view(), self._pos.view(), blocked

    def segment_counts(self) -> Tuple[int, int]:
        """(n_vision, n_text) context entries — used by cost accounting."""
        return self._n_vision, self._ctx_len - self._n_vision

    def arena_stats(self) -> ArenaStats:
        """Copy/growth accounting aggregated over this cache's arenas."""
        return self._stats
