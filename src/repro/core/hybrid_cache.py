"""Hybrid KV cache: target-provided context + the draft head's own KV.

During AASD inference the speculating module attends over two stores:

* the **context**: compressed vision KV plus the target model's last-layer
  text KV for every committed token except the newest (grows after each
  verify step, fed by the verification forward's KV by-product);
* the **draft segment**: the head's own KV for tokens drafted in the
  current block (cleared after each verify).

Context entries carry a segment tag (vision/text) so the Figure 4 ablations
can mask a modality at attention time.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError

__all__ = ["HybridKVCache", "SEGMENT_VISION", "SEGMENT_TEXT"]

SEGMENT_VISION = 0
SEGMENT_TEXT = 1


class HybridKVCache:
    """Numpy KV store for one AASD generation session (batch size 1)."""

    def __init__(self, n_heads: int, head_dim: int) -> None:
        self.n_heads = n_heads
        self.head_dim = head_dim
        shape = (1, n_heads, 0, head_dim)
        self._ctx_k = np.empty(shape, dtype=np.float32)
        self._ctx_v = np.empty(shape, dtype=np.float32)
        self._ctx_pos = np.empty((0,), dtype=np.int64)
        self._ctx_seg = np.empty((0,), dtype=np.int8)
        self._draft_k = np.empty(shape, dtype=np.float32)
        self._draft_v = np.empty(shape, dtype=np.float32)
        self._draft_pos = np.empty((0,), dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def context_len(self) -> int:
        """Entries in the fixed context store (projected vision + text KV)."""
        return self._ctx_k.shape[2]

    @property
    def draft_len(self) -> int:
        """Entries in the block-local draft store (cleared every block)."""
        return self._draft_k.shape[2]

    @property
    def total_len(self) -> int:
        """Total attended KV length: context plus current draft segment."""
        return self.context_len + self.draft_len

    def _check(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        positions = np.asarray(positions, dtype=np.int64)
        if k.shape != v.shape:
            raise ShapeError(f"K/V mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4 or k.shape[0] != 1 or k.shape[1] != self.n_heads or k.shape[3] != self.head_dim:
            raise ShapeError(
                f"expected (1, {self.n_heads}, T, {self.head_dim}), got {k.shape}"
            )
        if positions.shape != (k.shape[2],):
            raise ShapeError(
                f"positions shape {positions.shape} != ({k.shape[2]},)"
            )
        return k, v, positions

    # ------------------------------------------------------------------
    def append_context(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray, segment: int) -> None:
        """Append target-provided (or projected) KV to the context store."""
        if segment not in (SEGMENT_VISION, SEGMENT_TEXT):
            raise ShapeError(f"unknown segment tag {segment}")
        k, v, positions = self._check(k, v, positions)
        self._ctx_k = np.concatenate([self._ctx_k, k], axis=2)
        self._ctx_v = np.concatenate([self._ctx_v, v], axis=2)
        self._ctx_pos = np.concatenate([self._ctx_pos, positions])
        self._ctx_seg = np.concatenate(
            [self._ctx_seg, np.full(k.shape[2], segment, dtype=np.int8)]
        )

    def append_draft(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> None:
        """Append the draft head's own KV for freshly drafted tokens."""
        k, v, positions = self._check(k, v, positions)
        self._draft_k = np.concatenate([self._draft_k, k], axis=2)
        self._draft_v = np.concatenate([self._draft_v, v], axis=2)
        self._draft_pos = np.concatenate([self._draft_pos, positions])

    def clear_draft(self) -> None:
        """Drop the block-local draft KV (called after every verify)."""
        shape = (1, self.n_heads, 0, self.head_dim)
        self._draft_k = np.empty(shape, dtype=np.float32)
        self._draft_v = np.empty(shape, dtype=np.float32)
        self._draft_pos = np.empty((0,), dtype=np.int64)

    # ------------------------------------------------------------------
    def gather(
        self,
        disable_image_kv: bool = False,
        disable_text_kv: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(K, V, key_positions, blocked)`` over context + draft.

        ``blocked`` is a per-key boolean row implementing the modality
        ablations; the draft segment is never blocked.
        """
        k = np.concatenate([self._ctx_k, self._draft_k], axis=2)
        v = np.concatenate([self._ctx_v, self._draft_v], axis=2)
        positions = np.concatenate([self._ctx_pos, self._draft_pos])
        blocked = np.zeros(k.shape[2], dtype=bool)
        if disable_image_kv:
            blocked[: self.context_len] |= self._ctx_seg == SEGMENT_VISION
        if disable_text_kv:
            blocked[: self.context_len] |= self._ctx_seg == SEGMENT_TEXT
        return k, v, positions, blocked

    def segment_counts(self) -> Tuple[int, int]:
        """(n_vision, n_text) context entries — used by cost accounting."""
        n_vision = int((self._ctx_seg == SEGMENT_VISION).sum())
        return n_vision, self.context_len - n_vision
