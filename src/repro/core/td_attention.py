"""Target-Draft Attention (T-D Attn): train-time alignment with inference.

The problem (paper Sec. 3.3)
----------------------------
At inference, when the draft head generates its s-th token of a block at
text position i, its query attends to

* the *target* model's KV for positions ``<= i - s`` (plus the compressed
  vision KV, which is always visible), and
* the draft head's *own* KV for the block's tokens, positions
  ``i - s + 1 .. i``.

A standard lower-triangular causal mask over one KV set cannot express this
two-source pattern, and literally materialising a separate
``(q_i, K_hat_i, V_hat_i)`` set per position costs O(n^2) memory.

The optimisation (paper Eq. 12-13)
----------------------------------
Because softmax only needs the *row* of combined scores, it suffices to
compute the two score matrices ``Q' K^T`` (draft queries vs target keys)
and ``Q' K'^T`` (draft queries vs draft keys) once, mask each with its own
index rule, take one softmax over the concatenation, and split the weights
back over ``V`` and ``V'``:

    o_hat_i = a_hat_i V_{i-s}  +  a_hat_i V'_{i-s+1..i}

This file implements that fused computation (differentiable, used for
training) and a literal per-position reference implementation used by the
test suite to prove equivalence.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..nn import functional as F
from ..nn.tensor import Tensor, as_tensor, concat

__all__ = [
    "td_attention_masks",
    "target_draft_attention",
    "naive_target_draft_attention",
]


def td_attention_masks(n: int, s: int) -> Tuple[np.ndarray, np.ndarray]:
    """Blocking masks (True = blocked) for the two KV sources.

    Query at local position ``i`` may attend:
      * target keys ``j``   with ``j <= i - s``,
      * draft  keys ``j``   with ``i - s < j <= i``.

    With ``s = 1`` this is the paper's base case: all history from the
    target plus the draft's own current token.
    """
    if s < 1:
        raise ShapeError(f"draft depth s must be >= 1, got {s}")
    idx = np.arange(n)
    i = idx[:, None]
    j = idx[None, :]
    blocked_target = j > i - s
    blocked_draft = (j <= i - s) | (j > i)
    return blocked_target, blocked_draft


def target_draft_attention(
    q: Tensor,
    k_target: Tensor,
    v_target: Tensor,
    k_draft: Tensor,
    v_draft: Tensor,
    s: int = 1,
    k_static: Optional[Tensor] = None,
    v_static: Optional[Tensor] = None,
) -> Tensor:
    """Fused T-D attention over (static, target, draft) KV sources.

    Parameters
    ----------
    q, k_draft, v_draft:
        Draft-head queries/keys/values, ``(B, H, T, Dh)``.
    k_target, v_target:
        Target-model last-layer KV at the same T text positions (treated as
        constants by the caller — detach before passing when training).
    s:
        Simulated draft depth (how many tokens the draft has produced in
        the current block); sampled in ``1..gamma`` during training.
    k_static, v_static:
        Optional always-visible context of shape ``(B, H, S, Dh)`` — the
        compressed vision KV.

    Returns the attention output ``(B, H, T, Dh)``.
    """
    q = as_tensor(q)
    k_target, v_target = as_tensor(k_target), as_tensor(v_target)
    k_draft, v_draft = as_tensor(k_draft), as_tensor(v_draft)
    n = q.shape[2]
    if k_target.shape[2] != n or k_draft.shape[2] != n:
        raise ShapeError(
            f"key lengths must equal query length {n}: "
            f"target={k_target.shape[2]}, draft={k_draft.shape[2]}"
        )
    blocked_target, blocked_draft = td_attention_masks(n, s)

    keys = [k_target, k_draft]
    values = [v_target, v_draft]
    blocks = [blocked_target, blocked_draft]
    if k_static is not None:
        if v_static is None:
            raise ShapeError("k_static given without v_static")
        k_static = as_tensor(k_static)
        v_static = as_tensor(v_static)
        keys.insert(0, k_static)
        values.insert(0, v_static)
        blocks.insert(0, np.zeros((n, k_static.shape[2]), dtype=bool))

    k_all = concat(keys, axis=2)
    v_all = concat(values, axis=2)
    blocked = np.concatenate(blocks, axis=1)

    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ k_all.swapaxes(-1, -2)) * scale
    scores = scores.masked_fill(blocked, -1e9)
    weights = F.softmax(scores, axis=-1)
    return weights @ v_all


def naive_target_draft_attention(
    q: np.ndarray,
    k_target: np.ndarray,
    v_target: np.ndarray,
    k_draft: np.ndarray,
    v_draft: np.ndarray,
    s: int = 1,
    k_static: Optional[np.ndarray] = None,
    v_static: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Literal per-position reference: builds K_hat_i / V_hat_i explicitly.

    This is the O(n^2)-memory construction the paper argues against; it is
    kept (numpy only, no autodiff) as the ground truth for equivalence
    tests and for the kernel benchmark that quantifies the fused version's
    advantage.
    """
    if s < 1:
        raise ShapeError(f"draft depth s must be >= 1, got {s}")
    q = np.asarray(q, dtype=np.float64)
    k_target = np.asarray(k_target, dtype=np.float64)
    v_target = np.asarray(v_target, dtype=np.float64)
    k_draft = np.asarray(k_draft, dtype=np.float64)
    v_draft = np.asarray(v_draft, dtype=np.float64)
    b, h, n, dh = q.shape
    out = np.zeros_like(q)
    scale = 1.0 / np.sqrt(dh)
    for i in range(n):
        tgt_end = max(0, i - s + 1)          # target keys j <= i - s
        drf_lo = max(0, i - s + 1)           # draft keys i - s < j <= i
        pieces_k = []
        pieces_v = []
        if k_static is not None:
            pieces_k.append(np.asarray(k_static, dtype=np.float64))
            pieces_v.append(np.asarray(v_static, dtype=np.float64))
        pieces_k.append(k_target[:, :, :tgt_end, :])
        pieces_v.append(v_target[:, :, :tgt_end, :])
        pieces_k.append(k_draft[:, :, drf_lo : i + 1, :])
        pieces_v.append(v_draft[:, :, drf_lo : i + 1, :])
        k_hat = np.concatenate(pieces_k, axis=2)
        v_hat = np.concatenate(pieces_v, axis=2)
        scores = np.einsum("bhd,bhkd->bhk", q[:, :, i, :], k_hat) * scale
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=-1, keepdims=True)
        out[:, :, i, :] = np.einsum("bhk,bhkd->bhd", weights, v_hat)
    return out
