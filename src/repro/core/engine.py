"""AASDEngine: the full prefill / draft / verify inference loop.

This is the paper's Figure 2a pipeline:

1. **Prefill** — the target processes image + prompt, producing its KV
   cache and the first token; the draft head compresses the vision slice of
   the last-layer KV through the projector and adopts the text slice as its
   attention context.
2. **Draft** — the speculating module autoregressively proposes gamma
   tokens, attending over [compressed vision KV, target text KV, its own
   block-local KV].
3. **Verify** — one parallel target forward checks the block (greedy match
   or speculative sampling).  The verification forward's *own last-layer KV
   output* for the accepted tokens is appended to the draft context, so
   context maintenance costs nothing extra.

Sessions: the loop is factored into a resumable per-request state object
(:class:`DecodeSession`) advanced one block at a time by
:meth:`AASDEngine.step`.  :meth:`AASDEngine.decode` is the single-request
loop written on top; the continuous-batching scheduler in
:mod:`repro.serving` interleaves many sessions over one engine, joining new
requests at block boundaries and retiring finished ones without stalling
the rest.  Because *all* mutable decode state (target cache, hybrid cache,
committed tokens, fault status, gamma controller) lives on the session,
sessions are independent: a fault in one degrades that request alone.

Fault tolerance: speculative decoding is lossless-with-fallback by
construction — the target model alone can always finish a generation — so
a broken drafter must only ever cost speed, never availability.  Every
draft block is guarded against NaN/Inf logits, hybrid-cache invariant
violations, and arbitrary draft-head exceptions.  On a fault the engine
skips the block (verifying any clean prefix it already drafted, else
taking one plain target step) and, after ``max_draft_faults`` faults,
disables the speculating module and decodes the rest autoregressively.
Faults are counted on the returned :class:`DecodeRecord` so benchmarks can
report degradation rates.

Observability: the loop is tiled into ``prefill`` / ``draft`` / ``verify``
/ ``fallback`` spans under one ``decode`` root (see
:mod:`repro.obs.tracing`), each carrying gamma, acceptance counts, fault
tags, and the simulated-clock charge for that phase, so wall and simulated
time can be compared per phase.  Tracing is off by default and never
touches sampling state, so traced and untraced decodes emit identical
tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.tasks import MultimodalSample
from ..decoding.base import Decoder, encode_prompt
from ..decoding.cost_model import CostModel
from ..decoding.metrics import BlockRecord, DecodeRecord
from ..decoding.sampling import Sampler, SamplerConfig, logits_to_probs, speculative_verify
from ..decoding.tree import TreeDraft, accept_tree, tree_extra_blocked
from ..errors import DecodingError
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..obs.logsetup import get_logger, log_exception
from ..obs.tracing import NULL_SPAN, Tracer, get_tracer
from ..robustness.guards import check_hybrid_cache, ensure_finite
from ..tokenizer import WordTokenizer
from ..decoding.adaptive import FixedGamma, GammaController
from ..utils.rng import derive
from ..utils.timing import WallTimer
from .draft_head import AASDDraftHead
from .hybrid_cache import SEGMENT_TEXT, HybridKVCache
from .kv_arena import ArenaStats, combined_stats

__all__ = ["AASDEngineConfig", "AASDEngine", "DecodeSession", "StepReport"]

logger = get_logger(__name__)

FALLBACK_NONE = "none"
FALLBACK_DEGRADED = "degraded"
FALLBACK_TARGET_ONLY = "target-only"


@dataclass(frozen=True)
class AASDEngineConfig:
    """Runtime knobs of the engine (ablation switches included)."""

    gamma: int = 3
    max_new_tokens: int = 64
    disable_image_kv: bool = False   # Figure 4 ablation
    disable_text_kv: bool = False    # Figure 4 ablation
    fallback_on_fault: bool = True   # degrade instead of raising on draft faults
    max_draft_faults: int = 3        # after this many faults, go target-only
    guard_cache: bool = True         # validate hybrid-cache invariants per block
    # Tree speculation (repro.decoding.tree): draft a candidate *tree*
    # instead of a gamma-chain and verify every branch in one target
    # forward.  Greedy-only; with max_branch=1 the tree degenerates to
    # the chain and the engine's output is bitwise identical to the
    # linear speculative path.
    tree_speculation: bool = False   # route steps through the tree path
    tree_max_branch: int = 2         # top-k branching cap per draft step
    tree_max_nodes: int = 12         # node budget per tree (floored at gamma)
    tree_entropy_scale: float = 1.0  # draft-head nats needed per extra branch

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise DecodingError(f"gamma must be positive, got {self.gamma}")
        if self.max_new_tokens <= 0:
            raise DecodingError(f"max_new_tokens must be positive, got {self.max_new_tokens}")
        if self.max_draft_faults <= 0:
            raise DecodingError(f"max_draft_faults must be positive, got {self.max_draft_faults}")
        if self.tree_max_branch <= 0:
            raise DecodingError(f"tree_max_branch must be positive, got {self.tree_max_branch}")
        if self.tree_max_nodes <= 0:
            raise DecodingError(f"tree_max_nodes must be positive, got {self.tree_max_nodes}")
        if self.tree_entropy_scale <= 0:
            raise DecodingError(
                f"tree_entropy_scale must be positive, got {self.tree_entropy_scale}"
            )


@dataclass
class DecodeSession:
    """Resumable state of one in-flight generation (one request).

    Created by :meth:`AASDEngine.begin` (which runs the prefill) and
    advanced one draft-then-verify block per :meth:`AASDEngine.step` call.
    Every piece of mutable decode state lives here rather than on the
    engine, so a scheduler can interleave arbitrarily many sessions over
    one engine and a fault in one session degrades that session alone.
    """

    sample: MultimodalSample            #: the request being decoded
    record: DecodeRecord                #: per-request metrics, charged in place
    prompt_ids: np.ndarray              #: encoded ``[bos, prompt...]``
    eos: int                            #: tokenizer eos id
    gen_base: int                       #: absolute position of ``committed[0]``
    max_new_tokens: int                 #: per-request generation budget
    gamma_controller: GammaController   #: per-session speculation depth policy
    target_cache: object                #: the target model's KV cache
    hybrid: HybridKVCache               #: the speculating module's hybrid cache
    committed: List[int] = field(default_factory=list)  #: tokens emitted so far
    speculating: bool = True            #: False once speculation was disabled
    request_id: Optional[str] = None    #: serving-layer id (attribution)

    @property
    def finished(self) -> bool:
        """True once eos was emitted or the token budget is exhausted."""
        return bool(self.committed) and (
            self.committed[-1] == self.eos
            or len(self.committed) >= self.max_new_tokens
        )

    @property
    def n_committed(self) -> int:
        """Tokens emitted so far."""
        return len(self.committed)

    def memory_stats(self) -> ArenaStats:
        """Arena copy/growth accounting over this session's two caches.

        Tolerates non-arena (reference) cache implementations, which
        simply contribute nothing.
        """
        return combined_stats(self.target_cache, self.hybrid)


@dataclass
class _PackedDraftState:
    """Per-session scratch state of one packed draft/verify round.

    Mirrors the locals of the solo :meth:`AASDEngine.step` draft phase so
    the packed round can replicate its bookkeeping (charges, fault
    handling, budget expiry) session by session.
    """

    session: DecodeSession
    last: int                       #: last committed token (verify anchor)
    last_pos: int                   #: absolute position of ``last``
    gamma: int                      #: depth the controller granted this round
    token: int                      #: token fed to the next draft step
    pos: int                        #: position of ``token``
    tokens: List[int] = field(default_factory=list)       #: drafted tokens
    probs: List[np.ndarray] = field(default_factory=list)  #: draft distributions
    kv_lens: List[int] = field(default_factory=list)      #: hybrid KV len per step
    draft_ms: float = 0.0           #: solo-priced draft charge (budget check)
    faulted: bool = False           #: a draft fault truncated this block


@dataclass(frozen=True)
class StepReport:
    """What one :meth:`AASDEngine.step` call did, for batched cost grouping.

    The serving scheduler uses the step composition — how many tokens the
    target forward fed and the hybrid-KV length of every draft-head step —
    to charge the *batched* cost of a round to the server clock, while the
    session's own :class:`DecodeRecord` keeps solo-priced attribution.
    """

    kind: str                           #: ``"verify"``, ``"fallback"``, or ``"expired"``
    feed_size: int                      #: tokens fed to the target forward
    draft_kv_lens: Tuple[int, ...]      #: hybrid KV length per draft-head step
    n_accepted: int = 0                 #: draft tokens accepted (verify only)
    tree: bool = False                  #: the step took the tree-speculation path


class AASDEngine(Decoder):
    """Speculative decoding with the KV-reusing speculating module."""

    def __init__(
        self,
        target: MiniLlava,
        head: AASDDraftHead,
        tokenizer: WordTokenizer,
        cost_model: CostModel,
        config: Optional[AASDEngineConfig] = None,
        sampler_config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        gamma_controller: Optional[GammaController] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.target = target
        self.head = head
        self.tokenizer = tokenizer
        self.cost_model = cost_model
        self.config = config or AASDEngineConfig()
        self.gamma_controller = gamma_controller or FixedGamma(self.config.gamma)
        sampler_config = sampler_config or SamplerConfig()
        self.rng = rng if rng is not None else derive(sampler_config.seed, "engine")
        self.sampler = Sampler(sampler_config, rng=self.rng)
        self._tracer = tracer
        if head.config.n_vision_tokens != target.n_vision_tokens and head.config.use_target_kv:
            raise DecodingError(
                f"draft head expects {head.config.n_vision_tokens} vision tokens, "
                f"target produces {target.n_vision_tokens}"
            )

    @property
    def name(self) -> str:
        """Table label of this decoder."""
        return "ours"

    @property
    def tracer(self) -> Tracer:
        """Explicit tracer if one was injected, else the process default."""
        return self._tracer if self._tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    def _target_step(self, last: int, target_cache, record: DecodeRecord, span=NULL_SPAN):
        """One plain autoregressive target step (the fallback primitive).

        Returns ``(next_token, decode_output)`` so callers can reuse the
        forward's last-layer KV for draft-context maintenance.
        """
        out = self.target.decode(np.asarray([[last]], dtype=np.int64), target_cache)
        span.add_sim_ms(record.charge_sim(self.cost_model.target_step(), "fallback"))
        record.count_target_forward()
        record.count_fallback_step()
        return self.sampler.sample(out.logits.data[0, -1]), out

    def _build_context(self, target_cache, hybrid: HybridKVCache, prompt_ids, n_vis: int,
                       record: DecodeRecord) -> float:
        """Build the draft context; returns the simulated ms charged."""
        charged = 0.0
        if self.head.config.use_target_kv:
            self.head.build_context(target_cache, hybrid)
            if self.head.projector is not None:
                charged += record.charge_sim(self.cost_model.projector(), "prefill")
        else:
            # Figure 3 ablation: the head encodes the prompt itself.
            positions = n_vis + np.arange(len(prompt_ids), dtype=np.int64)
            k_own, v_own = self.head.self_encode(prompt_ids, positions)
            hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
            charged += record.charge_sim(self.cost_model.draft_prefill(), "prefill")
        if self.config.guard_cache:
            check_hybrid_cache(hybrid)
        return charged

    def _append_committed_kv(self, out, last: int, accepted, keep: int, last_pos: int,
                             hybrid: HybridKVCache, record: DecodeRecord,
                             category: str, rows: Optional[np.ndarray] = None) -> None:
        """Context maintenance after a verify (or fallback) target forward.

        ``rows`` selects which fed rows were accepted when the feed was a
        candidate tree (acceptance is a root path, not a prefix, so the
        kept rows need not be contiguous); ``None`` keeps the linear
        behavior of taking the first ``keep`` rows.
        """
        positions = last_pos + np.arange(keep, dtype=np.int64)
        if self.head.config.use_target_kv:
            # Free by-product of verification: last-layer KV of the fed
            # tokens, trimmed to the accepted prefix (or gathered along
            # the accepted root path).
            k_new, v_new = out.last_layer_kv
            if rows is None:
                k_keep = k_new.data[:, :, :keep, :]
                v_keep = v_new.data[:, :, :keep, :]
            else:
                k_keep = k_new.data[:, :, rows, :]
                v_keep = v_new.data[:, :, rows, :]
            hybrid.append_context(k_keep, v_keep, positions, SEGMENT_TEXT)
        else:
            emitted = np.asarray([last] + list(accepted), dtype=np.int64)
            k_own, v_own = self.head.self_encode(emitted, positions)
            hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
            record.charge_sim(self.cost_model.draft_sync(keep), category)

    def _disable_speculation(self, session: DecodeSession, reason: str) -> None:
        """Turn a session target-only after repeated / unrecoverable faults."""
        session.speculating = False
        session.record.fallback_mode = FALLBACK_TARGET_ONLY
        logger.warning(
            "speculation disabled, decoding target-only: %s",
            reason,
            extra={
                "event": "fallback_target_only",
                "reason": reason,
                "n_draft_faults": session.record.n_draft_faults,
                "request_id": session.request_id,
            },
        )

    # ------------------------------------------------------------------
    # Session API: begin / step / finish.  decode() is the sequential loop
    # on top; repro.serving interleaves many sessions per engine.
    # ------------------------------------------------------------------
    def begin(
        self,
        sample: MultimodalSample,
        *,
        record: Optional[DecodeRecord] = None,
        max_new_tokens: Optional[int] = None,
        gamma_controller: Optional[GammaController] = None,
        request_id: Optional[str] = None,
    ) -> DecodeSession:
        """Prefill one request and return its resumable :class:`DecodeSession`.

        ``max_new_tokens`` overrides the engine config per request;
        ``gamma_controller`` supplies a per-session depth policy (pass a
        fresh controller per session when interleaving — the engine's
        shared controller is only reset here when it is the one used).
        The prefill is traced as a ``prefill`` span and charged to
        ``record`` exactly as in :meth:`decode`.
        """
        cfg = self.config
        tracer = self.tracer
        with no_grad(), tracer.span("prefill") as sp:
            if record is None:
                record = DecodeRecord()
            if request_id is not None:
                record.request_id = request_id
            prompt_ids = encode_prompt(self.tokenizer, sample)
            n_vis = self.target.n_vision_tokens
            controller = gamma_controller
            if controller is None:
                controller = self.gamma_controller
            speculating = True

            target_cache, last_logits = self.target.prefill(
                sample.image[None], prompt_ids[None]
            )
            sp.add_sim_ms(record.charge_sim(self.cost_model.target_prefill(), "prefill"))
            record.count_target_forward()

            hybrid = HybridKVCache(self.head.config.n_heads, self.head.config.head_dim)
            session = DecodeSession(
                sample=sample,
                record=record,
                prompt_ids=prompt_ids,
                eos=self.tokenizer.vocab.eos_id,
                gen_base=n_vis + len(prompt_ids),
                max_new_tokens=max_new_tokens or cfg.max_new_tokens,
                gamma_controller=controller,
                target_cache=target_cache,
                hybrid=hybrid,
                request_id=request_id,
            )
            try:
                sp.add_sim_ms(
                    self._build_context(target_cache, hybrid, prompt_ids, n_vis, record)
                )
            except Exception as exc:  # any head fault degrades, never aborts
                if not cfg.fallback_on_fault:
                    raise
                log_exception(logger, "context_build_fault", exc,
                              request_id=request_id)
                record.note_fault(f"context build failed: {exc}")
                self._disable_speculation(session, "context build failed")
                sp.set_attr("fault", str(exc))
                speculating = False
            session.speculating = speculating

            session.committed.append(self.sampler.sample(last_logits[0]))
            controller.reset()
        return session

    # ------------------------------------------------------------------
    # Packed batched rounds (docs/kernels.md).  A batch of B sessions
    # runs its prefill / draft / verify phases as fused kernels — one set
    # of GEMMs over a cu-seqlen-packed tensor (prefill/verify) or a
    # (B, 1, D) lockstep tensor (draft) — instead of B per-session Python
    # loops, while every per-session side effect (record charges, fault
    # handling, controller updates, cache maintenance) replicates the
    # solo path exactly.  Greedy outputs are bitwise token-identical to
    # per-session stepping; that identity is what licenses the fusion.
    # ------------------------------------------------------------------
    @property
    def packed_ready(self) -> bool:
        """Whether batched calls may take the packed fused path.

        Requires a draft head that advertises ``supports_packed`` (fault
        injection wrappers intercept per-session ``step`` calls and opt
        out) and greedy sampling — non-greedy decode draws RNG in
        session order, which a batch-ordered round would permute.
        """
        return bool(getattr(self.head, "supports_packed", False)) and bool(
            self.sampler.config.greedy
        )

    @property
    def tree_ready(self) -> bool:
        """Whether steps may take the tree-speculation path.

        Requires the config switch, a head that advertises
        ``supports_tree`` (fault-injection wrappers intercept per-request
        ``step`` calls and opt out, keeping the linear path where
        interception works), and greedy sampling — tree acceptance is
        defined for greedy configs only (:func:`repro.decoding.tree.accept_tree`).
        """
        return (
            self.config.tree_speculation
            and bool(getattr(self.head, "supports_tree", False))
            and bool(self.sampler.config.greedy)
        )

    def begin_batch(
        self,
        samples: Sequence[MultimodalSample],
        *,
        records: Optional[Sequence[Optional[DecodeRecord]]] = None,
        max_new_tokens: Optional[Sequence[Optional[int]]] = None,
        gamma_controllers: Optional[Sequence[Optional[GammaController]]] = None,
        request_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Union[DecodeSession, Exception]]:
        """Prefill B requests as one packed forward; per-request outcomes.

        The per-request option sequences parallel ``samples`` (``None``
        entries take the :meth:`begin` defaults).  Returns one entry per
        request *in order*: the started :class:`DecodeSession`, or the
        exception that request's prefill raised (failures are isolated —
        one bad sample never aborts its batchmates, mirroring the
        scheduler's per-request fault handling around solo ``begin``).

        When the engine is not :attr:`packed_ready` (or B == 1) each
        request simply runs solo :meth:`begin`.  On the packed path the
        image batch is encoded in one vision call and the LM prefill runs
        cu-seqlen-packed (:meth:`MiniLlava.prefill_batch`), bitwise
        token-identical to B solo prefills; records are charged and the
        draft context built per session exactly as in :meth:`begin`.
        """
        n = len(samples)
        recs = list(records) if records is not None else [None] * n
        mnts = list(max_new_tokens) if max_new_tokens is not None else [None] * n
        ctrls = list(gamma_controllers) if gamma_controllers is not None else [None] * n
        rids = list(request_ids) if request_ids is not None else [None] * n
        if not (len(recs) == len(mnts) == len(ctrls) == len(rids) == n):
            raise DecodingError("begin_batch per-request sequences must parallel samples")

        outcomes: List[Union[DecodeSession, Exception]] = [None] * n  # type: ignore[list-item]
        if n == 1 or not self.packed_ready:
            for i in range(n):
                try:
                    outcomes[i] = self.begin(
                        samples[i],
                        record=recs[i],
                        max_new_tokens=mnts[i],
                        gamma_controller=ctrls[i],
                        request_id=rids[i],
                    )
                except Exception as exc:
                    log_exception(logger, "prefill_fault", exc, request_id=rids[i])
                    outcomes[i] = exc
            return outcomes

        cfg = self.config
        n_vis = self.target.n_vision_tokens
        with no_grad(), self.tracer.span("prefill") as sp:
            sp.set_attr("batch", n)
            prepped: List[Tuple[int, DecodeRecord, np.ndarray, GammaController]] = []
            for i in range(n):
                try:
                    record = recs[i] if recs[i] is not None else DecodeRecord()
                    if rids[i] is not None:
                        record.request_id = rids[i]
                    prompt_ids = encode_prompt(self.tokenizer, samples[i])
                    controller = ctrls[i] if ctrls[i] is not None else self.gamma_controller
                    prepped.append((i, record, prompt_ids, controller))
                except Exception as exc:
                    log_exception(logger, "prefill_fault", exc, request_id=rids[i])
                    outcomes[i] = exc
            caches: List[object] = []
            logit_rows: List[np.ndarray] = []
            if prepped:
                try:
                    caches, logit_rows = self.target.prefill_batch(
                        [samples[i].image for i, *_ in prepped],
                        [p for _, _, p, _ in prepped],
                    )
                except Exception as exc:
                    # A batch-wide failure (e.g. one malformed image makes
                    # the image stack ragged) must not take down the whole
                    # admission: redo each request as a solo prefill so
                    # only the requests that genuinely fault are failed.
                    log_exception(logger, "prefill_fault", exc, batch=len(prepped))
                    survivors: List[Tuple[int, DecodeRecord, np.ndarray, GammaController]] = []
                    for entry in prepped:
                        i, _, prompt_ids, _ = entry
                        try:
                            cache, last = self.target.prefill(
                                samples[i].image[None], prompt_ids[None]
                            )
                        except Exception as solo_exc:
                            log_exception(logger, "prefill_fault", solo_exc,
                                          request_id=rids[i])
                            outcomes[i] = solo_exc
                            continue
                        survivors.append(entry)
                        caches.append(cache)
                        logit_rows.append(last)
                    prepped = survivors
            for (i, record, prompt_ids, controller), cache, last_logits in zip(
                prepped, caches, logit_rows
            ):
                sp.add_sim_ms(
                    record.charge_sim(self.cost_model.target_prefill(), "prefill")
                )
                record.count_target_forward()
                hybrid = HybridKVCache(self.head.config.n_heads, self.head.config.head_dim)
                session = DecodeSession(
                    sample=samples[i],
                    record=record,
                    prompt_ids=prompt_ids,
                    eos=self.tokenizer.vocab.eos_id,
                    gen_base=n_vis + len(prompt_ids),
                    max_new_tokens=mnts[i] or cfg.max_new_tokens,
                    gamma_controller=controller,
                    target_cache=cache,
                    hybrid=hybrid,
                    request_id=rids[i],
                )
                speculating = True
                try:
                    sp.add_sim_ms(
                        self._build_context(cache, hybrid, prompt_ids, n_vis, record)
                    )
                except Exception as exc:  # any head fault degrades, never aborts
                    if not cfg.fallback_on_fault:
                        raise
                    log_exception(logger, "context_build_fault", exc, request_id=rids[i])
                    record.note_fault(f"context build failed: {exc}")
                    self._disable_speculation(session, "context build failed")
                    sp.set_attr("fault", str(exc))
                    speculating = False
                session.speculating = speculating
                session.committed.append(self.sampler.sample(last_logits[0]))
                controller.reset()
                outcomes[i] = session
        return outcomes

    def step(
        self,
        session: DecodeSession,
        *,
        budget_ms: Optional[float] = None,
        force_fallback: bool = False,
    ) -> StepReport:
        """Advance one block: draft-then-verify, or one fallback target step.

        Mutates ``session`` in place (committed tokens, caches, fault
        state, record charges) and returns a :class:`StepReport`
        describing the step's composition so batched schedulers can price
        the round.  Raises :class:`~repro.errors.DecodingError` if the
        session already finished.

        ``budget_ms`` is the session's remaining deadline budget on the
        server clock: when the draft phase alone already charges more
        than the budget, the speculated block is dropped before the
        verify forward and the step returns ``kind="expired"`` — the
        session keeps its partial generation but stops consuming verify
        compute for tokens a dead request could never use.  The check
        prices the draft solo, a documented approximation of its batched
        share (always within one phase of the scheduler's own
        round-boundary accounting).

        ``force_fallback`` takes one plain target step *without*
        consulting or advancing the gamma controller, while still doing
        draft-context maintenance — the circuit breaker uses it to flip a
        batch to target-only decoding temporarily, so speculation can
        resume the moment the breaker re-closes.
        """
        if session.finished:
            raise DecodingError("cannot step a finished session")
        tracer = self.tracer

        # Local setup and the returned StepReport are built *inside* the
        # phase spans so sibling spans keep tiling the decode loop with
        # sub-microsecond gaps (the per-phase wall-time invariant).
        with no_grad():
            if not session.speculating:
                with tracer.span("fallback") as sp:
                    record = session.record
                    committed = session.committed
                    token, _ = self._target_step(
                        committed[-1], session.target_cache, record, sp
                    )
                    committed.append(token)
                    report = StepReport(kind="fallback", feed_size=1, draft_kv_lens=())
                return report

            if force_fallback:
                with tracer.span("fallback") as sp:
                    sp.set_attr("forced", True)
                    cfg = self.config
                    record = session.record
                    hybrid = session.hybrid
                    committed = session.committed
                    last = committed[-1]
                    last_pos = session.gen_base + len(committed) - 1
                    token, out = self._target_step(last, session.target_cache, record, sp)
                    try:
                        self._append_committed_kv(
                            out, last, [], 1, last_pos, hybrid, record, "fallback"
                        )
                        if cfg.guard_cache:
                            check_hybrid_cache(hybrid)
                    except Exception as exc:  # degrade to plain decode
                        if not cfg.fallback_on_fault:
                            raise
                        log_exception(logger, "context_maintenance_fault", exc,
                                      request_id=session.request_id,
                                      phase="forced-fallback")
                        record.note_fault(f"context maintenance failed: {exc}")
                        sp.set_attr("fault", str(exc))
                        self._disable_speculation(session, "context maintenance failed")
                    committed.append(token)
                    report = StepReport(kind="fallback", feed_size=1, draft_kv_lens=())
                return report

            if self.tree_ready:
                return self._step_tree(session, budget_ms=budget_ms)

            # ---- draft: gamma steps of the speculating module -------
            # Guarded: a fault truncates the block to the clean prefix
            # drafted so far instead of aborting the decode.
            with tracer.span("draft") as sp:
                cfg = self.config
                record = session.record
                hybrid = session.hybrid
                committed = session.committed
                last = committed[-1]
                last_pos = session.gen_base + len(committed) - 1
                draft_tokens: List[int] = []
                draft_probs: List[np.ndarray] = []
                draft_kv_lens: List[int] = []
                draft_ms = 0.0
                gamma = session.gamma_controller.next_gamma()
                sp.set_attr("gamma", gamma)
                token, pos = last, last_pos
                try:
                    for _ in range(gamma):
                        kv_len = hybrid.total_len + 1
                        step_ms = record.charge_sim(
                            self.cost_model.aasd_step(kv_len), "draft"
                        )
                        sp.add_sim_ms(step_ms)
                        draft_ms += step_ms
                        draft_kv_lens.append(kv_len)
                        logits = self.head.step(
                            token,
                            pos,
                            hybrid,
                            disable_image_kv=cfg.disable_image_kv,
                            disable_text_kv=cfg.disable_text_kv,
                            request_id=session.request_id,
                        )
                        ensure_finite(logits, "draft logits")
                        probs = logits_to_probs(logits, self.sampler.config)
                        token = self.sampler.sample(logits)
                        draft_probs.append(probs)
                        draft_tokens.append(token)
                        pos += 1
                    if cfg.guard_cache:
                        check_hybrid_cache(hybrid)
                except Exception as exc:  # any head fault degrades, never aborts
                    if not cfg.fallback_on_fault:
                        raise
                    log_exception(logger, "draft_fault", exc,
                                  request_id=session.request_id, position=pos)
                    record.note_fault(f"draft fault at position {pos}: {exc}")
                    sp.set_attr("fault", str(exc))
                    # The draft segment may be poisoned; the context store
                    # is target-provided and still trusted (re-validated
                    # below).
                    hybrid.clear_draft()
                    draft_tokens = []
                    draft_probs = []
                    if record.n_draft_faults >= cfg.max_draft_faults:
                        self._disable_speculation(
                            session, f"{record.n_draft_faults} draft faults"
                        )
                sp.set_attr("n_draft", len(draft_tokens))
                expired = bool(
                    budget_ms is not None and draft_tokens and draft_ms > budget_ms
                )
                if expired:
                    # Mid-round deadline: the draft phase alone blew the
                    # remaining budget, so skip the verify forward and
                    # drop the (uncommitted) speculated block.  Partial
                    # generation stays on the session; the scheduler
                    # retires it as timed out without another round.
                    sp.set_attr("expired", True)
                    hybrid.clear_draft()
                    report = StepReport(
                        kind="expired", feed_size=0,
                        draft_kv_lens=tuple(draft_kv_lens),
                    )
            if expired:
                return report

            if not draft_tokens:
                # Nothing drafted this block: take one plain target step
                # and keep the draft context in sync for the next block.
                with tracer.span("fallback") as sp:
                    token, out = self._target_step(last, session.target_cache, record, sp)
                    if session.speculating:
                        try:
                            self._append_committed_kv(
                                out, last, [], 1, last_pos, hybrid, record, "fallback"
                            )
                            if cfg.guard_cache:
                                check_hybrid_cache(hybrid)
                        except Exception as exc:  # degrade to plain decode
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "context_maintenance_fault", exc,
                                          request_id=session.request_id,
                                          phase="fallback")
                            record.note_fault(f"context maintenance failed: {exc}")
                            sp.set_attr("fault", str(exc))
                            self._disable_speculation(session, "context maintenance failed")
                    committed.append(token)
                    report = StepReport(
                        kind="fallback", feed_size=1, draft_kv_lens=tuple(draft_kv_lens)
                    )
                return report

            # ---- verify: one parallel target forward ----------------
            with tracer.span("verify") as sp:
                gamma_used = len(draft_tokens)
                sp.set_attr("n_draft", gamma_used)
                verify_start = session.target_cache.seq_len
                feed = np.asarray([[last] + draft_tokens], dtype=np.int64)
                out = self.target.decode(feed, session.target_cache)
                sp.add_sim_ms(record.charge_sim(
                    self.cost_model.target_verify(gamma_used + 1), "verify"
                ))
                record.count_target_forward()

                outcome = speculative_verify(
                    draft_tokens,
                    np.stack(draft_probs),
                    out.logits.data[0],
                    self.sampler.config,
                    self.rng,
                )
                record.add_block(
                    BlockRecord(
                        n_draft=gamma_used,
                        n_accepted=outcome.n_accepted,
                        n_emitted=outcome.tokens_emitted,
                    )
                )
                sp.set_attr("n_accepted", outcome.n_accepted)
                session.gamma_controller.update(outcome.n_accepted, gamma_used)

                # Roll back rejected tokens in the target cache.
                keep = 1 + outcome.n_accepted
                session.target_cache.truncate(verify_start + keep)

                # ---- context maintenance ----------------------------
                hybrid.clear_draft()
                try:
                    self._append_committed_kv(
                        out, last, outcome.accepted, keep, last_pos, hybrid,
                        record, "verify",
                    )
                except Exception as exc:  # degrade to plain decode
                    if not cfg.fallback_on_fault:
                        raise
                    log_exception(logger, "context_maintenance_fault", exc,
                                  request_id=session.request_id, phase="verify")
                    record.note_fault(f"context maintenance failed: {exc}")
                    sp.set_attr("fault", str(exc))
                    self._disable_speculation(session, "context maintenance failed")

                committed.extend(outcome.accepted)
                committed.append(outcome.next_token)
                if session.eos in committed:
                    del committed[committed.index(session.eos) + 1:]
                elif len(committed) > session.max_new_tokens:
                    del committed[session.max_new_tokens:]
                report = StepReport(
                    kind="verify",
                    feed_size=gamma_used + 1,
                    draft_kv_lens=tuple(draft_kv_lens),
                    n_accepted=outcome.n_accepted,
                )
            return report

    # ------------------------------------------------------------------
    # Tree speculation (repro.decoding.tree).  One block becomes: draft a
    # candidate tree (entropy-adapted branching), verify EVERY branch in
    # one target forward under the tree-attention mask, walk the longest
    # root path matching the target's argmax, and commit only that path's
    # KV — pointer/gather ops only, rollback is free because rejected
    # rows were never written.  With tree_max_branch=1 the tree is the
    # gamma-chain and every emitted token, charge, and cache byte matches
    # the linear path above bitwise.
    # ------------------------------------------------------------------
    def _step_tree(
        self,
        session: DecodeSession,
        *,
        budget_ms: Optional[float] = None,
    ) -> StepReport:
        """Advance one block on the tree-speculation path (solo session).

        Mirrors :meth:`step`'s draft/fallback/verify structure — same
        spans, same record charges (``on_step`` prices each draft-head
        expansion before it runs, exactly like the linear
        charge-then-step order), same fault handling and budget-expiry
        semantics — with the chain draft replaced by
        :meth:`AASDDraftHead.draft_tree` and the verify by one
        tree-masked target forward.
        """
        tracer = self.tracer
        with no_grad():
            with tracer.span("draft") as sp:
                cfg = self.config
                record = session.record
                hybrid = session.hybrid
                committed = session.committed
                last = committed[-1]
                last_pos = session.gen_base + len(committed) - 1
                kv_lens: List[int] = []
                draft_ms = [0.0]
                gamma = session.gamma_controller.next_gamma()
                sp.set_attr("gamma", gamma)

                def charge(kv_len: int) -> None:
                    """Price one draft-head expansion before it runs."""
                    step_ms = record.charge_sim(self.cost_model.aasd_step(kv_len), "draft")
                    sp.add_sim_ms(step_ms)
                    draft_ms[0] += step_ms
                    kv_lens.append(kv_len)

                tree: Optional[TreeDraft] = None
                try:
                    tree = self.head.draft_tree(
                        last,
                        last_pos,
                        hybrid,
                        gamma=gamma,
                        max_branch=cfg.tree_max_branch,
                        max_nodes=cfg.tree_max_nodes,
                        entropy_scale=cfg.tree_entropy_scale,
                        disable_image_kv=cfg.disable_image_kv,
                        disable_text_kv=cfg.disable_text_kv,
                        request_id=session.request_id,
                        on_step=charge,
                    )
                    if cfg.guard_cache:
                        check_hybrid_cache(hybrid)
                except Exception as exc:  # any head fault degrades, never aborts
                    if not cfg.fallback_on_fault:
                        raise
                    log_exception(logger, "draft_fault", exc,
                                  request_id=session.request_id, position=last_pos)
                    record.note_fault(f"draft fault at position {last_pos}: {exc}")
                    sp.set_attr("fault", str(exc))
                    # The draft segment may be poisoned; the context store
                    # is target-provided and still trusted.
                    hybrid.clear_draft()
                    tree = None
                    if record.n_draft_faults >= cfg.max_draft_faults:
                        self._disable_speculation(
                            session, f"{record.n_draft_faults} draft faults"
                        )
                n_nodes = tree.n_nodes if tree is not None else 0
                sp.set_attr("n_draft", n_nodes)
                expired = bool(
                    budget_ms is not None and n_nodes and draft_ms[0] > budget_ms
                )
                if expired:
                    sp.set_attr("expired", True)
                    hybrid.clear_draft()
                    report = StepReport(
                        kind="expired", feed_size=0,
                        draft_kv_lens=tuple(kv_lens), tree=True,
                    )
            if expired:
                return report

            if tree is None or not tree.n_nodes:
                # Nothing drafted this block: take one plain target step
                # and keep the draft context in sync for the next block.
                with tracer.span("fallback") as sp:
                    token, out = self._target_step(last, session.target_cache, record, sp)
                    if session.speculating:
                        try:
                            self._append_committed_kv(
                                out, last, [], 1, last_pos, hybrid, record, "fallback"
                            )
                            if cfg.guard_cache:
                                check_hybrid_cache(hybrid)
                        except Exception as exc:  # degrade to plain decode
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "context_maintenance_fault", exc,
                                          request_id=session.request_id,
                                          phase="fallback")
                            record.note_fault(f"context maintenance failed: {exc}")
                            sp.set_attr("fault", str(exc))
                            self._disable_speculation(session, "context maintenance failed")
                    committed.append(token)
                    report = StepReport(
                        kind="fallback", feed_size=1,
                        draft_kv_lens=tuple(kv_lens), tree=True,
                    )
                return report

            # ---- verify: ONE target forward over the whole tree -----
            with tracer.span("verify") as sp:
                sp.set_attr("n_draft", tree.n_nodes)
                feed = np.asarray([[last] + list(tree.tokens)], dtype=np.int64)
                out = self.target.decode(
                    feed,
                    session.target_cache,
                    update_cache=False,
                    positions=tree.feed_positions(last_pos),
                    extra_blocked=tree_extra_blocked(
                        tree.parents, session.target_cache.seq_len
                    ),
                )
                sp.add_sim_ms(record.charge_sim(
                    self.cost_model.tree_verify(1 + tree.n_nodes), "verify"
                ))
                record.count_target_forward()
                report = self._commit_tree_outcome(
                    session, tree, out, last, last_pos, tuple(kv_lens), sp
                )
                sp.set_attr("n_accepted", report.n_accepted)
            return report

    def _commit_tree_outcome(
        self,
        session: DecodeSession,
        tree: TreeDraft,
        out,
        last: int,
        last_pos: int,
        kv_lens: Tuple[int, ...],
        sp,
    ) -> StepReport:
        """Acceptance walk + pointer-only commit after a tree-verify forward.

        Shared by the solo and packed tree paths; the caller has already
        charged the verify forward.  The forward ran with
        ``update_cache=False``, so committing means *gathering* the
        accepted rows' fresh KV (anchor + root path) into the target
        cache; rejected branches are never written — rollback costs
        nothing.
        """
        cfg = self.config
        record = session.record
        outcome = accept_tree(tree, out.logits.data[0], self.sampler.config)
        record.add_block(
            BlockRecord(
                n_draft=tree.n_nodes,
                n_accepted=outcome.n_accepted,
                n_emitted=outcome.tokens_emitted,
            )
        )
        session.gamma_controller.update(outcome.n_accepted, tree.max_depth)

        keep_rows = np.asarray([0] + [i + 1 for i in outcome.path], dtype=np.int64)
        keep = len(keep_rows)
        for layer_idx, (k_new, v_new) in enumerate(out.new_kv):
            session.target_cache.append(
                layer_idx,
                k_new.data[:, :, keep_rows, :],
                v_new.data[:, :, keep_rows, :],
            )
        session.target_cache.extend_positions(
            last_pos + np.arange(keep, dtype=np.int64)
        )

        # ---- context maintenance --------------------------------------
        session.hybrid.clear_draft()
        try:
            self._append_committed_kv(
                out, last, outcome.accepted, keep, last_pos, session.hybrid,
                record, "verify", rows=keep_rows,
            )
        except Exception as exc:  # degrade to plain decode
            if not cfg.fallback_on_fault:
                raise
            log_exception(logger, "context_maintenance_fault", exc,
                          request_id=session.request_id, phase="verify")
            record.note_fault(f"context maintenance failed: {exc}")
            sp.set_attr("fault", str(exc))
            self._disable_speculation(session, "context maintenance failed")

        session.committed.extend(outcome.accepted)
        session.committed.append(outcome.next_token)
        if session.eos in session.committed:
            del session.committed[session.committed.index(session.eos) + 1:]
        elif len(session.committed) > session.max_new_tokens:
            del session.committed[session.max_new_tokens:]
        return StepReport(
            kind="verify",
            feed_size=1 + tree.n_nodes,
            draft_kv_lens=kv_lens,
            n_accepted=outcome.n_accepted,
            tree=True,
        )

    def step_batch(
        self,
        sessions: Sequence[DecodeSession],
        *,
        budgets_ms: Optional[Sequence[Optional[float]]] = None,
        force_fallback: bool = False,
    ) -> List[StepReport]:
        """Advance B sessions one block each, as one packed fused round.

        Semantically ``[self.step(s) for s in sessions]`` — same committed
        tokens (bitwise, under greedy), same per-session record charges,
        fault handling, controller updates, and budget expiry — but the
        compute is batched: all speculating sessions draft in lockstep
        through :meth:`AASDDraftHead.step_packed` (one ``(B, 1, D)``
        kernel set per draft position, sessions dropping out as their
        gamma is reached or a fault truncates their block) and verify in
        one cu-seqlen-packed target forward
        (:meth:`MiniLlava.decode_batch`).  The round is traced as one
        batch-level ``draft`` span and one ``verify`` span.

        Sessions that cannot take the packed path — not speculating, or
        with nothing drafted — fall through to solo stepping / fallback
        within the same round.  When the engine is not
        :attr:`packed_ready`, ``force_fallback`` is set, or B == 1, every
        session runs solo :meth:`step`.  A draft-head exception faults
        the sessions active at that draft position (each handled exactly
        like a solo draft fault); with ``fallback_on_fault=False`` it is
        re-raised.

        Returns one :class:`StepReport` per session, in input order.
        """
        n = len(sessions)
        budgets = list(budgets_ms) if budgets_ms is not None else [None] * n
        if len(budgets) != n:
            raise DecodingError("step_batch budgets_ms must parallel sessions")
        for session in sessions:
            if session.finished:
                raise DecodingError("cannot step a finished session")
        if n == 1 or force_fallback or not self.packed_ready:
            return [
                self.step(s, budget_ms=b, force_fallback=force_fallback)
                for s, b in zip(sessions, budgets)
            ]
        if self.tree_ready:
            return self._step_batch_tree(sessions, budgets)

        cfg = self.config
        tracer = self.tracer
        reports: List[Optional[StepReport]] = [None] * n
        with no_grad():
            spec_idx: List[int] = []
            for i, session in enumerate(sessions):
                if session.speculating:
                    spec_idx.append(i)
                else:
                    reports[i] = self.step(session, budget_ms=budgets[i])
            if len(spec_idx) == 1:
                i = spec_idx[0]
                reports[i] = self.step(sessions[i], budget_ms=budgets[i])
                spec_idx = []
            if not spec_idx:
                return reports  # type: ignore[return-value]

            # ---- packed draft: lockstep gamma steps -----------------
            st: dict = {}
            with tracer.span("draft") as sp:
                sp.set_attr("batch", len(spec_idx))
                for i in spec_idx:
                    session = sessions[i]
                    last = session.committed[-1]
                    last_pos = session.gen_base + len(session.committed) - 1
                    st[i] = _PackedDraftState(
                        session=session,
                        last=last,
                        last_pos=last_pos,
                        gamma=session.gamma_controller.next_gamma(),
                        token=last,
                        pos=last_pos,
                    )
                sp.set_attr("gamma", max(st[i].gamma for i in spec_idx))
                for depth in range(max(st[i].gamma for i in spec_idx)):
                    active = [
                        i for i in spec_idx
                        if st[i].gamma > depth and not st[i].faulted
                    ]
                    if not active:
                        break
                    for i in active:
                        s = st[i]
                        kv_len = s.session.hybrid.total_len + 1
                        step_ms = s.session.record.charge_sim(
                            self.cost_model.aasd_step(kv_len), "draft"
                        )
                        sp.add_sim_ms(step_ms)
                        s.draft_ms += step_ms
                        s.kv_lens.append(kv_len)
                    try:
                        logit_rows = self.head.step_packed(
                            [st[i].token for i in active],
                            [st[i].pos for i in active],
                            [sessions[i].hybrid for i in active],
                            disable_image_kv=cfg.disable_image_kv,
                            disable_text_kv=cfg.disable_text_kv,
                            request_ids=[sessions[i].request_id for i in active],
                        )
                    except Exception as exc:  # faults every active session
                        if not cfg.fallback_on_fault:
                            raise
                        log_exception(logger, "draft_fault", exc,
                                      batch=len(active), depth=depth)
                        for i in active:
                            self._note_packed_draft_fault(st[i], exc, sp)
                        continue
                    for i, logits in zip(active, logit_rows):
                        s = st[i]
                        try:
                            ensure_finite(logits, "draft logits")
                            probs = logits_to_probs(logits, self.sampler.config)
                            token = self.sampler.sample(logits)
                        except Exception as exc:
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "draft_fault", exc,
                                          request_id=s.session.request_id,
                                          position=s.pos)
                            self._note_packed_draft_fault(s, exc, sp)
                            continue
                        s.probs.append(probs)
                        s.tokens.append(token)
                        s.token = token
                        s.pos += 1
                if cfg.guard_cache:
                    for i in spec_idx:
                        if st[i].faulted:
                            continue
                        try:
                            check_hybrid_cache(sessions[i].hybrid)
                        except Exception as exc:
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "draft_fault", exc,
                                          request_id=sessions[i].request_id,
                                          position=st[i].pos)
                            self._note_packed_draft_fault(st[i], exc, sp)
                sp.set_attr("n_draft", sum(len(st[i].tokens) for i in spec_idx))
                for i in spec_idx:
                    s = st[i]
                    if budgets[i] is not None and s.tokens and s.draft_ms > budgets[i]:
                        sp.set_attr("expired", True)
                        sessions[i].hybrid.clear_draft()
                        reports[i] = StepReport(
                            kind="expired", feed_size=0,
                            draft_kv_lens=tuple(s.kv_lens),
                        )

            # ---- solo fallback for sessions with nothing drafted ----
            for i in spec_idx:
                if reports[i] is not None:
                    continue
                s = st[i]
                session = sessions[i]
                if s.tokens:
                    continue
                with tracer.span("fallback") as sp:
                    record = session.record
                    token, out = self._target_step(
                        s.last, session.target_cache, record, sp
                    )
                    if session.speculating:
                        try:
                            self._append_committed_kv(
                                out, s.last, [], 1, s.last_pos, session.hybrid,
                                record, "fallback",
                            )
                            if cfg.guard_cache:
                                check_hybrid_cache(session.hybrid)
                        except Exception as exc:  # degrade to plain decode
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "context_maintenance_fault", exc,
                                          request_id=session.request_id,
                                          phase="fallback")
                            record.note_fault(f"context maintenance failed: {exc}")
                            sp.set_attr("fault", str(exc))
                            self._disable_speculation(session, "context maintenance failed")
                    session.committed.append(token)
                    reports[i] = StepReport(
                        kind="fallback", feed_size=1, draft_kv_lens=tuple(s.kv_lens)
                    )

            # ---- packed verify: one fused target forward ------------
            verify_idx = [i for i in spec_idx if reports[i] is None]
            if verify_idx:
                with tracer.span("verify") as sp:
                    sp.set_attr("batch", len(verify_idx))
                    sp.set_attr(
                        "n_draft", sum(len(st[i].tokens) for i in verify_idx)
                    )
                    feeds = [
                        np.asarray([st[i].last] + st[i].tokens, dtype=np.int64)
                        for i in verify_idx
                    ]
                    caches = [sessions[i].target_cache for i in verify_idx]
                    verify_starts = [cache.seq_len for cache in caches]
                    outs = self.target.decode_batch(feeds, caches)
                    n_accepted_total = 0
                    for i, out, verify_start in zip(verify_idx, outs, verify_starts):
                        s = st[i]
                        session = sessions[i]
                        record = session.record
                        gamma_used = len(s.tokens)
                        sp.add_sim_ms(record.charge_sim(
                            self.cost_model.target_verify(gamma_used + 1), "verify"
                        ))
                        record.count_target_forward()

                        outcome = speculative_verify(
                            s.tokens,
                            np.stack(s.probs),
                            out.logits.data[0],
                            self.sampler.config,
                            self.rng,
                        )
                        record.add_block(
                            BlockRecord(
                                n_draft=gamma_used,
                                n_accepted=outcome.n_accepted,
                                n_emitted=outcome.tokens_emitted,
                            )
                        )
                        n_accepted_total += outcome.n_accepted
                        session.gamma_controller.update(outcome.n_accepted, gamma_used)

                        keep = 1 + outcome.n_accepted
                        session.target_cache.truncate(verify_start + keep)
                        session.hybrid.clear_draft()
                        try:
                            self._append_committed_kv(
                                out, s.last, outcome.accepted, keep, s.last_pos,
                                session.hybrid, record, "verify",
                            )
                        except Exception as exc:  # degrade to plain decode
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "context_maintenance_fault", exc,
                                          request_id=session.request_id,
                                          phase="verify")
                            record.note_fault(f"context maintenance failed: {exc}")
                            sp.set_attr("fault", str(exc))
                            self._disable_speculation(session, "context maintenance failed")

                        session.committed.extend(outcome.accepted)
                        session.committed.append(outcome.next_token)
                        if session.eos in session.committed:
                            del session.committed[
                                session.committed.index(session.eos) + 1:
                            ]
                        elif len(session.committed) > session.max_new_tokens:
                            del session.committed[session.max_new_tokens:]
                        reports[i] = StepReport(
                            kind="verify",
                            feed_size=gamma_used + 1,
                            draft_kv_lens=tuple(s.kv_lens),
                            n_accepted=outcome.n_accepted,
                        )
                    sp.set_attr("n_accepted", n_accepted_total)
        return reports  # type: ignore[return-value]

    def _step_batch_tree(
        self,
        sessions: Sequence[DecodeSession],
        budgets: Sequence[Optional[float]],
    ) -> List[StepReport]:
        """Advance B sessions one tree block each; one packed tree verify.

        The batched analogue of :meth:`_step_tree`, mirroring
        :meth:`step_batch`'s structure: non-speculating sessions take solo
        fallback steps, tree drafting runs per session under one
        batch-level ``draft`` span (tree growth is data-dependent, so the
        draft phase cannot run in lockstep — its cost model grouping
        still matches the solo charges exactly), sessions with nothing
        drafted fall back solo, and every drafted tree is verified in
        **one** cu-seqlen-packed target forward whose rows carry
        per-request tree positions and ancestor masks.  Commit and
        bookkeeping per session are identical to the solo path.
        """
        cfg = self.config
        tracer = self.tracer
        n = len(sessions)
        reports: List[Optional[StepReport]] = [None] * n
        with no_grad():
            spec_idx: List[int] = []
            for i, session in enumerate(sessions):
                if session.speculating:
                    spec_idx.append(i)
                else:
                    reports[i] = self.step(session, budget_ms=budgets[i])
            if len(spec_idx) == 1:
                i = spec_idx[0]
                reports[i] = self.step(sessions[i], budget_ms=budgets[i])
                spec_idx = []
            if not spec_idx:
                return reports  # type: ignore[return-value]

            # ---- draft: one tree per session, one batch-level span --
            trees: dict = {}
            anchors: dict = {}
            kv_lens_map: dict = {}
            with tracer.span("draft") as sp:
                sp.set_attr("batch", len(spec_idx))
                gammas = {i: sessions[i].gamma_controller.next_gamma() for i in spec_idx}
                sp.set_attr("gamma", max(gammas.values()))
                for i in spec_idx:
                    session = sessions[i]
                    record = session.record
                    hybrid = session.hybrid
                    last = session.committed[-1]
                    last_pos = session.gen_base + len(session.committed) - 1
                    anchors[i] = (last, last_pos)
                    kv_lens: List[int] = []
                    kv_lens_map[i] = kv_lens
                    draft_ms = [0.0]

                    def charge(kv_len: int, record=record, kv_lens=kv_lens,
                               draft_ms=draft_ms) -> None:
                        """Price one draft-head expansion before it runs."""
                        step_ms = record.charge_sim(
                            self.cost_model.aasd_step(kv_len), "draft"
                        )
                        sp.add_sim_ms(step_ms)
                        draft_ms[0] += step_ms
                        kv_lens.append(kv_len)

                    tree: Optional[TreeDraft] = None
                    try:
                        tree = self.head.draft_tree(
                            last,
                            last_pos,
                            hybrid,
                            gamma=gammas[i],
                            max_branch=cfg.tree_max_branch,
                            max_nodes=cfg.tree_max_nodes,
                            entropy_scale=cfg.tree_entropy_scale,
                            disable_image_kv=cfg.disable_image_kv,
                            disable_text_kv=cfg.disable_text_kv,
                            request_id=session.request_id,
                            on_step=charge,
                        )
                        if cfg.guard_cache:
                            check_hybrid_cache(hybrid)
                    except Exception as exc:  # any head fault degrades, never aborts
                        if not cfg.fallback_on_fault:
                            raise
                        log_exception(logger, "draft_fault", exc,
                                      request_id=session.request_id,
                                      position=last_pos)
                        record.note_fault(f"draft fault at position {last_pos}: {exc}")
                        sp.set_attr("fault", str(exc))
                        hybrid.clear_draft()
                        tree = None
                        if record.n_draft_faults >= cfg.max_draft_faults:
                            self._disable_speculation(
                                session, f"{record.n_draft_faults} draft faults"
                            )
                    trees[i] = tree
                    if (
                        budgets[i] is not None
                        and tree is not None
                        and tree.n_nodes
                        and draft_ms[0] > budgets[i]
                    ):
                        sp.set_attr("expired", True)
                        hybrid.clear_draft()
                        reports[i] = StepReport(
                            kind="expired", feed_size=0,
                            draft_kv_lens=tuple(kv_lens), tree=True,
                        )
                sp.set_attr(
                    "n_draft",
                    sum(t.n_nodes for t in trees.values() if t is not None),
                )

            # ---- solo fallback for sessions with nothing drafted ----
            for i in spec_idx:
                if reports[i] is not None:
                    continue
                tree = trees[i]
                if tree is not None and tree.n_nodes:
                    continue
                session = sessions[i]
                last, last_pos = anchors[i]
                with tracer.span("fallback") as sp:
                    record = session.record
                    token, out = self._target_step(
                        last, session.target_cache, record, sp
                    )
                    if session.speculating:
                        try:
                            self._append_committed_kv(
                                out, last, [], 1, last_pos, session.hybrid,
                                record, "fallback",
                            )
                            if cfg.guard_cache:
                                check_hybrid_cache(session.hybrid)
                        except Exception as exc:  # degrade to plain decode
                            if not cfg.fallback_on_fault:
                                raise
                            log_exception(logger, "context_maintenance_fault", exc,
                                          request_id=session.request_id,
                                          phase="fallback")
                            record.note_fault(f"context maintenance failed: {exc}")
                            sp.set_attr("fault", str(exc))
                            self._disable_speculation(session, "context maintenance failed")
                    session.committed.append(token)
                    reports[i] = StepReport(
                        kind="fallback", feed_size=1,
                        draft_kv_lens=tuple(kv_lens_map[i]), tree=True,
                    )

            # ---- packed tree verify: ONE fused target forward -------
            verify_idx = [i for i in spec_idx if reports[i] is None]
            if verify_idx:
                with tracer.span("verify") as sp:
                    sp.set_attr("batch", len(verify_idx))
                    sp.set_attr(
                        "n_draft", sum(trees[i].n_nodes for i in verify_idx)
                    )
                    feeds = [
                        np.asarray(
                            [anchors[i][0]] + list(trees[i].tokens), dtype=np.int64
                        )
                        for i in verify_idx
                    ]
                    caches = [sessions[i].target_cache for i in verify_idx]
                    outs = self.target.decode_batch(
                        feeds,
                        caches,
                        update_cache=False,
                        position_rows=[
                            trees[i].feed_positions(anchors[i][1]) for i in verify_idx
                        ],
                        extra_blocked_rows=[
                            tree_extra_blocked(
                                trees[i].parents, sessions[i].target_cache.seq_len
                            )
                            for i in verify_idx
                        ],
                    )
                    n_accepted_total = 0
                    for i, out in zip(verify_idx, outs):
                        session = sessions[i]
                        record = session.record
                        tree = trees[i]
                        last, last_pos = anchors[i]
                        sp.add_sim_ms(record.charge_sim(
                            self.cost_model.tree_verify(1 + tree.n_nodes), "verify"
                        ))
                        record.count_target_forward()
                        reports[i] = self._commit_tree_outcome(
                            session, tree, out, last, last_pos,
                            tuple(kv_lens_map[i]), sp,
                        )
                        n_accepted_total += reports[i].n_accepted
                    sp.set_attr("n_accepted", n_accepted_total)
        return reports  # type: ignore[return-value]

    def _note_packed_draft_fault(self, state: _PackedDraftState, exc: Exception, sp) -> None:
        """Apply the solo draft-fault handling to one packed session.

        The caller logs the exception (handlers own their logging so the
        except-discipline lint can see it); this helper only mutates
        session state the way the solo draft-fault path would.
        """
        session = state.session
        session.record.note_fault(f"draft fault at position {state.pos}: {exc}")
        sp.set_attr("fault", str(exc))
        # The draft segment may be poisoned; the context store is
        # target-provided and still trusted.
        session.hybrid.clear_draft()
        state.tokens = []
        state.probs = []
        state.faulted = True
        if session.record.n_draft_faults >= self.config.max_draft_faults:
            self._disable_speculation(
                session, f"{session.record.n_draft_faults} draft faults"
            )

    def finish(self, session: DecodeSession) -> DecodeRecord:
        """Finalize a session: detokenize and return its record.

        Safe to call on an unfinished session (a timed-out request keeps
        the tokens committed so far).
        """
        record = session.record
        record.token_ids = list(session.committed)
        record.text = self.tokenizer.decode(record.token_ids)
        return record

    # ------------------------------------------------------------------
    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        """Run one full generation sequentially (the paper's setting)."""
        tracer = self.tracer
        record = DecodeRecord()

        with WallTimer() as timer, no_grad(), tracer.span(
            "decode", decoder=self.name
        ) as root:
            session = self.begin(sample, record=record)
            record.ttft_wall_s = timer.split()   # begin() committed token 1
            root.set_attr("n_prompt_tokens", len(session.prompt_ids))
            # Inline the finished-check (rather than session.finished) to
            # keep the per-block gap between phase spans sub-microsecond.
            committed, eos, budget = session.committed, session.eos, session.max_new_tokens
            while committed[-1] != eos and len(committed) < budget:
                self.step(session)
            root.set_attr("n_tokens", len(session.committed))
            root.set_attr("n_draft_faults", record.n_draft_faults)
            root.set_attr("fallback_mode", record.fallback_mode)
            memory = session.memory_stats()
            root.set_attr("bytes_copied", memory.bytes_copied)
            root.set_attr("arena_grows", memory.grow_events)
            root.set_attr("peak_cache_tokens", memory.peak_tokens)
            root.add_sim_ms(record.sim_time_ms)

        self.finish(session)
        record.wall_time_s = timer.elapsed
        return record
