"""AASDEngine: the full prefill / draft / verify inference loop.

This is the paper's Figure 2a pipeline:

1. **Prefill** — the target processes image + prompt, producing its KV
   cache and the first token; the draft head compresses the vision slice of
   the last-layer KV through the projector and adopts the text slice as its
   attention context.
2. **Draft** — the speculating module autoregressively proposes gamma
   tokens, attending over [compressed vision KV, target text KV, its own
   block-local KV].
3. **Verify** — one parallel target forward checks the block (greedy match
   or speculative sampling).  The verification forward's *own last-layer KV
   output* for the accepted tokens is appended to the draft context, so
   context maintenance costs nothing extra.

Fault tolerance: speculative decoding is lossless-with-fallback by
construction — the target model alone can always finish a generation — so
a broken drafter must only ever cost speed, never availability.  Every
draft block is guarded against NaN/Inf logits, hybrid-cache invariant
violations, and arbitrary draft-head exceptions.  On a fault the engine
skips the block (verifying any clean prefix it already drafted, else
taking one plain target step) and, after ``max_draft_faults`` faults,
disables the speculating module and decodes the rest autoregressively.
Faults are counted on the returned :class:`DecodeRecord` so benchmarks can
report degradation rates.

Observability: the loop is tiled into ``prefill`` / ``draft`` / ``verify``
/ ``fallback`` spans under one ``decode`` root (see
:mod:`repro.obs.tracing`), each carrying gamma, acceptance counts, fault
tags, and the simulated-clock charge for that phase, so wall and simulated
time can be compared per phase.  Tracing is off by default and never
touches sampling state, so traced and untraced decodes emit identical
tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.tasks import MultimodalSample
from ..decoding.base import Decoder, encode_prompt
from ..decoding.cost_model import CostModel
from ..decoding.metrics import BlockRecord, DecodeRecord
from ..decoding.sampling import Sampler, SamplerConfig, logits_to_probs, speculative_verify
from ..errors import DecodingError
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..obs.logsetup import get_logger
from ..obs.tracing import NULL_SPAN, Tracer, get_tracer
from ..robustness.guards import check_hybrid_cache, ensure_finite
from ..tokenizer import WordTokenizer
from ..decoding.adaptive import FixedGamma, GammaController
from ..utils.timing import WallTimer
from .draft_head import AASDDraftHead
from .hybrid_cache import SEGMENT_TEXT, HybridKVCache

__all__ = ["AASDEngineConfig", "AASDEngine"]

logger = get_logger(__name__)

FALLBACK_NONE = "none"
FALLBACK_DEGRADED = "degraded"
FALLBACK_TARGET_ONLY = "target-only"


@dataclass(frozen=True)
class AASDEngineConfig:
    """Runtime knobs of the engine (ablation switches included)."""

    gamma: int = 3
    max_new_tokens: int = 64
    disable_image_kv: bool = False   # Figure 4 ablation
    disable_text_kv: bool = False    # Figure 4 ablation
    fallback_on_fault: bool = True   # degrade instead of raising on draft faults
    max_draft_faults: int = 3        # after this many faults, go target-only
    guard_cache: bool = True         # validate hybrid-cache invariants per block

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise DecodingError(f"gamma must be positive, got {self.gamma}")
        if self.max_new_tokens <= 0:
            raise DecodingError(f"max_new_tokens must be positive, got {self.max_new_tokens}")
        if self.max_draft_faults <= 0:
            raise DecodingError(f"max_draft_faults must be positive, got {self.max_draft_faults}")


class AASDEngine(Decoder):
    """Speculative decoding with the KV-reusing speculating module."""

    def __init__(
        self,
        target: MiniLlava,
        head: AASDDraftHead,
        tokenizer: WordTokenizer,
        cost_model: CostModel,
        config: Optional[AASDEngineConfig] = None,
        sampler_config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        gamma_controller: Optional[GammaController] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.target = target
        self.head = head
        self.tokenizer = tokenizer
        self.cost_model = cost_model
        self.config = config or AASDEngineConfig()
        self.gamma_controller = gamma_controller or FixedGamma(self.config.gamma)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sampler = Sampler(sampler_config or SamplerConfig(), rng=self.rng)
        self._tracer = tracer
        if head.config.n_vision_tokens != target.n_vision_tokens and head.config.use_target_kv:
            raise DecodingError(
                f"draft head expects {head.config.n_vision_tokens} vision tokens, "
                f"target produces {target.n_vision_tokens}"
            )

    @property
    def name(self) -> str:
        return "ours"

    @property
    def tracer(self) -> Tracer:
        """Explicit tracer if one was injected, else the process default."""
        return self._tracer if self._tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    def _target_step(self, last: int, target_cache, record: DecodeRecord, span=NULL_SPAN):
        """One plain autoregressive target step (the fallback primitive).

        Returns ``(next_token, decode_output)`` so callers can reuse the
        forward's last-layer KV for draft-context maintenance.
        """
        out = self.target.decode(np.asarray([[last]], dtype=np.int64), target_cache)
        span.add_sim_ms(record.charge_sim(self.cost_model.target_step(), "fallback"))
        record.count_target_forward()
        record.count_fallback_step()
        return self.sampler.sample(out.logits.data[0, -1]), out

    def _build_context(self, target_cache, hybrid: HybridKVCache, prompt_ids, n_vis: int,
                       record: DecodeRecord) -> float:
        """Build the draft context; returns the simulated ms charged."""
        charged = 0.0
        if self.head.config.use_target_kv:
            self.head.build_context(target_cache, hybrid)
            if self.head.projector is not None:
                charged += record.charge_sim(self.cost_model.projector(), "prefill")
        else:
            # Figure 3 ablation: the head encodes the prompt itself.
            positions = n_vis + np.arange(len(prompt_ids), dtype=np.int64)
            k_own, v_own = self.head.self_encode(prompt_ids, positions)
            hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
            charged += record.charge_sim(self.cost_model.draft_prefill(), "prefill")
        if self.config.guard_cache:
            check_hybrid_cache(hybrid)
        return charged

    def _append_committed_kv(self, out, last: int, accepted, keep: int, last_pos: int,
                             hybrid: HybridKVCache, record: DecodeRecord,
                             category: str) -> None:
        """Context maintenance after a verify (or fallback) target forward."""
        positions = last_pos + np.arange(keep, dtype=np.int64)
        if self.head.config.use_target_kv:
            # Free by-product of verification: last-layer KV of the fed
            # tokens, trimmed to the accepted prefix.
            k_new, v_new = out.last_layer_kv
            hybrid.append_context(
                k_new.data[:, :, :keep, :],
                v_new.data[:, :, :keep, :],
                positions,
                SEGMENT_TEXT,
            )
        else:
            emitted = np.asarray([last] + list(accepted), dtype=np.int64)
            k_own, v_own = self.head.self_encode(emitted, positions)
            hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
            record.charge_sim(self.cost_model.draft_sync(keep), category)

    def _disable_speculation(self, record: DecodeRecord, reason: str) -> None:
        record.fallback_mode = FALLBACK_TARGET_ONLY
        logger.warning(
            "speculation disabled, decoding target-only: %s",
            reason,
            extra={
                "event": "fallback_target_only",
                "reason": reason,
                "n_draft_faults": record.n_draft_faults,
            },
        )

    # ------------------------------------------------------------------
    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        cfg = self.config
        tracer = self.tracer
        record = DecodeRecord()
        prompt_ids = encode_prompt(self.tokenizer, sample)
        eos = self.tokenizer.vocab.eos_id
        n_vis = self.target.n_vision_tokens
        gen_base = n_vis + len(prompt_ids)  # absolute position of committed[0]
        speculating = True

        with WallTimer() as timer, no_grad(), tracer.span(
            "decode", decoder=self.name, n_prompt_tokens=len(prompt_ids)
        ) as root:
            with tracer.span("prefill") as sp:
                target_cache, last_logits = self.target.prefill(
                    sample.image[None], prompt_ids[None]
                )
                sp.add_sim_ms(record.charge_sim(self.cost_model.target_prefill(), "prefill"))
                record.count_target_forward()

                hybrid = HybridKVCache(self.head.config.n_heads, self.head.config.head_dim)
                try:
                    sp.add_sim_ms(
                        self._build_context(target_cache, hybrid, prompt_ids, n_vis, record)
                    )
                except Exception as exc:  # noqa: BLE001 — any head fault degrades
                    if not cfg.fallback_on_fault:
                        raise
                    record.note_fault(f"context build failed: {exc}")
                    self._disable_speculation(record, "context build failed")
                    sp.set_attr("fault", str(exc))
                    speculating = False

                committed: List[int] = [self.sampler.sample(last_logits[0])]
                self.gamma_controller.reset()

            while committed[-1] != eos and len(committed) < cfg.max_new_tokens:
                last = committed[-1]
                last_pos = gen_base + len(committed) - 1

                if not speculating:
                    with tracer.span("fallback") as sp:
                        token, _ = self._target_step(last, target_cache, record, sp)
                        committed.append(token)
                    continue

                # ---- draft: gamma steps of the speculating module -------
                # Guarded: a fault truncates the block to the clean prefix
                # drafted so far instead of aborting the decode.
                draft_tokens: List[int] = []
                draft_probs: List[np.ndarray] = []
                with tracer.span("draft") as sp:
                    gamma = self.gamma_controller.next_gamma()
                    sp.set_attr("gamma", gamma)
                    token, pos = last, last_pos
                    try:
                        for _ in range(gamma):
                            sp.add_sim_ms(record.charge_sim(
                                self.cost_model.aasd_step(hybrid.total_len + 1), "draft"
                            ))
                            logits = self.head.step(
                                token,
                                pos,
                                hybrid,
                                disable_image_kv=cfg.disable_image_kv,
                                disable_text_kv=cfg.disable_text_kv,
                            )
                            ensure_finite(logits, "draft logits")
                            probs = logits_to_probs(logits, self.sampler.config)
                            token = self.sampler.sample(logits)
                            draft_probs.append(probs)
                            draft_tokens.append(token)
                            pos += 1
                        if cfg.guard_cache:
                            check_hybrid_cache(hybrid)
                    except Exception as exc:  # noqa: BLE001 — any head fault degrades
                        if not cfg.fallback_on_fault:
                            raise
                        record.note_fault(f"draft fault at position {pos}: {exc}")
                        sp.set_attr("fault", str(exc))
                        # The draft segment may be poisoned; the context store
                        # is target-provided and still trusted (re-validated
                        # below).
                        hybrid.clear_draft()
                        draft_tokens = []
                        draft_probs = []
                        if record.n_draft_faults >= cfg.max_draft_faults:
                            speculating = False
                            self._disable_speculation(
                                record, f"{record.n_draft_faults} draft faults"
                            )
                    sp.set_attr("n_draft", len(draft_tokens))

                if not draft_tokens:
                    # Nothing drafted this block: take one plain target step
                    # and keep the draft context in sync for the next block.
                    with tracer.span("fallback") as sp:
                        token, out = self._target_step(last, target_cache, record, sp)
                        if speculating:
                            try:
                                self._append_committed_kv(
                                    out, last, [], 1, last_pos, hybrid, record, "fallback"
                                )
                                if cfg.guard_cache:
                                    check_hybrid_cache(hybrid)
                            except Exception as exc:  # noqa: BLE001
                                if not cfg.fallback_on_fault:
                                    raise
                                record.note_fault(f"context maintenance failed: {exc}")
                                sp.set_attr("fault", str(exc))
                                speculating = False
                                self._disable_speculation(record, "context maintenance failed")
                        committed.append(token)
                    continue

                # ---- verify: one parallel target forward ----------------
                with tracer.span("verify") as sp:
                    gamma_used = len(draft_tokens)
                    sp.set_attr("n_draft", gamma_used)
                    verify_start = target_cache.seq_len
                    feed = np.asarray([[last] + draft_tokens], dtype=np.int64)
                    out = self.target.decode(feed, target_cache)
                    sp.add_sim_ms(record.charge_sim(
                        self.cost_model.target_verify(gamma_used + 1), "verify"
                    ))
                    record.count_target_forward()

                    outcome = speculative_verify(
                        draft_tokens,
                        np.stack(draft_probs),
                        out.logits.data[0],
                        self.sampler.config,
                        self.rng,
                    )
                    record.add_block(
                        BlockRecord(
                            n_draft=gamma_used,
                            n_accepted=outcome.n_accepted,
                            n_emitted=outcome.tokens_emitted,
                        )
                    )
                    sp.set_attr("n_accepted", outcome.n_accepted)
                    self.gamma_controller.update(outcome.n_accepted, gamma_used)

                    # Roll back rejected tokens in the target cache.
                    keep = 1 + outcome.n_accepted
                    target_cache.truncate(verify_start + keep)

                    # ---- context maintenance ----------------------------
                    hybrid.clear_draft()
                    try:
                        self._append_committed_kv(
                            out, last, outcome.accepted, keep, last_pos, hybrid,
                            record, "verify",
                        )
                    except Exception as exc:  # noqa: BLE001
                        if not cfg.fallback_on_fault:
                            raise
                        record.note_fault(f"context maintenance failed: {exc}")
                        sp.set_attr("fault", str(exc))
                        speculating = False
                        self._disable_speculation(record, "context maintenance failed")

                    committed.extend(outcome.accepted)
                    committed.append(outcome.next_token)
                    if eos in committed:
                        committed = committed[: committed.index(eos) + 1]
                        break
                    if len(committed) >= cfg.max_new_tokens:
                        committed = committed[: cfg.max_new_tokens]
                        break

            root.set_attr("n_tokens", len(committed))
            root.set_attr("n_draft_faults", record.n_draft_faults)
            root.set_attr("fallback_mode", record.fallback_mode)
            root.add_sim_ms(record.sim_time_ms)

        record.token_ids = committed
        record.wall_time_s = timer.elapsed
        record.text = self.tokenizer.decode(committed)
        return record
