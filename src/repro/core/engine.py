"""AASDEngine: the full prefill / draft / verify inference loop.

This is the paper's Figure 2a pipeline:

1. **Prefill** — the target processes image + prompt, producing its KV
   cache and the first token; the draft head compresses the vision slice of
   the last-layer KV through the projector and adopts the text slice as its
   attention context.
2. **Draft** — the speculating module autoregressively proposes gamma
   tokens, attending over [compressed vision KV, target text KV, its own
   block-local KV].
3. **Verify** — one parallel target forward checks the block (greedy match
   or speculative sampling).  The verification forward's *own last-layer KV
   output* for the accepted tokens is appended to the draft context, so
   context maintenance costs nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.tasks import MultimodalSample
from ..decoding.base import Decoder, encode_prompt
from ..decoding.cost_model import CostModel
from ..decoding.metrics import BlockRecord, DecodeRecord
from ..decoding.sampling import Sampler, SamplerConfig, logits_to_probs, speculative_verify
from ..errors import DecodingError
from ..models.llava import MiniLlava
from ..nn.tensor import no_grad
from ..tokenizer import WordTokenizer
from ..decoding.adaptive import FixedGamma, GammaController
from ..utils.timing import WallTimer
from .draft_head import AASDDraftHead
from .hybrid_cache import SEGMENT_TEXT, HybridKVCache

__all__ = ["AASDEngineConfig", "AASDEngine"]


@dataclass(frozen=True)
class AASDEngineConfig:
    """Runtime knobs of the engine (ablation switches included)."""

    gamma: int = 3
    max_new_tokens: int = 64
    disable_image_kv: bool = False   # Figure 4 ablation
    disable_text_kv: bool = False    # Figure 4 ablation

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise DecodingError(f"gamma must be positive, got {self.gamma}")
        if self.max_new_tokens <= 0:
            raise DecodingError(f"max_new_tokens must be positive, got {self.max_new_tokens}")


class AASDEngine(Decoder):
    """Speculative decoding with the KV-reusing speculating module."""

    def __init__(
        self,
        target: MiniLlava,
        head: AASDDraftHead,
        tokenizer: WordTokenizer,
        cost_model: CostModel,
        config: Optional[AASDEngineConfig] = None,
        sampler_config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        gamma_controller: Optional[GammaController] = None,
    ) -> None:
        self.target = target
        self.head = head
        self.tokenizer = tokenizer
        self.cost_model = cost_model
        self.config = config or AASDEngineConfig()
        self.gamma_controller = gamma_controller or FixedGamma(self.config.gamma)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sampler = Sampler(sampler_config or SamplerConfig(), rng=self.rng)
        if head.config.n_vision_tokens != target.n_vision_tokens and head.config.use_target_kv:
            raise DecodingError(
                f"draft head expects {head.config.n_vision_tokens} vision tokens, "
                f"target produces {target.n_vision_tokens}"
            )

    @property
    def name(self) -> str:
        return "ours"

    # ------------------------------------------------------------------
    def decode(self, sample: MultimodalSample) -> DecodeRecord:
        cfg = self.config
        record = DecodeRecord()
        prompt_ids = encode_prompt(self.tokenizer, sample)
        eos = self.tokenizer.vocab.eos_id
        n_vis = self.target.n_vision_tokens
        gen_base = n_vis + len(prompt_ids)  # absolute position of committed[0]

        with WallTimer() as timer, no_grad():
            target_cache, last_logits = self.target.prefill(
                sample.image[None], prompt_ids[None]
            )
            record.sim_time_ms += self.cost_model.target_prefill()
            record.n_target_forwards += 1

            hybrid = HybridKVCache(self.head.config.n_heads, self.head.config.head_dim)
            if self.head.config.use_target_kv:
                self.head.build_context(target_cache, hybrid)
                if self.head.projector is not None:
                    record.sim_time_ms += self.cost_model.projector()
            else:
                # Figure 3 ablation: the head encodes the prompt itself.
                positions = n_vis + np.arange(len(prompt_ids), dtype=np.int64)
                k_own, v_own = self.head.self_encode(prompt_ids, positions)
                hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
                record.sim_time_ms += self.cost_model.draft_prefill()

            committed: List[int] = [self.sampler.sample(last_logits[0])]
            self.gamma_controller.reset()

            while committed[-1] != eos and len(committed) < cfg.max_new_tokens:
                last = committed[-1]
                last_pos = gen_base + len(committed) - 1
                gamma = self.gamma_controller.next_gamma()

                # ---- draft: gamma steps of the speculating module -------
                draft_tokens: List[int] = []
                draft_probs: List[np.ndarray] = []
                token, pos = last, last_pos
                for _ in range(gamma):
                    record.sim_time_ms += self.cost_model.aasd_step(hybrid.total_len + 1)
                    logits = self.head.step(
                        token,
                        pos,
                        hybrid,
                        disable_image_kv=cfg.disable_image_kv,
                        disable_text_kv=cfg.disable_text_kv,
                    )
                    draft_probs.append(logits_to_probs(logits, self.sampler.config))
                    token = self.sampler.sample(logits)
                    draft_tokens.append(token)
                    pos += 1

                # ---- verify: one parallel target forward ----------------
                verify_start = target_cache.seq_len
                feed = np.asarray([[last] + draft_tokens], dtype=np.int64)
                out = self.target.decode(feed, target_cache)
                record.sim_time_ms += self.cost_model.target_verify(gamma + 1)
                record.n_target_forwards += 1

                outcome = speculative_verify(
                    draft_tokens,
                    np.stack(draft_probs),
                    out.logits.data[0],
                    self.sampler.config,
                    self.rng,
                )
                record.blocks.append(
                    BlockRecord(
                        n_draft=gamma,
                        n_accepted=outcome.n_accepted,
                        n_emitted=outcome.tokens_emitted,
                    )
                )
                self.gamma_controller.update(outcome.n_accepted, gamma)

                # Roll back rejected tokens in the target cache.
                keep = 1 + outcome.n_accepted
                target_cache.truncate(verify_start + keep)

                # ---- context maintenance --------------------------------
                hybrid.clear_draft()
                positions = last_pos + np.arange(keep, dtype=np.int64)
                if self.head.config.use_target_kv:
                    # Free by-product of verification: last-layer KV of the
                    # fed tokens, trimmed to the accepted prefix.
                    k_new, v_new = out.last_layer_kv
                    hybrid.append_context(
                        k_new.data[:, :, :keep, :],
                        v_new.data[:, :, :keep, :],
                        positions,
                        SEGMENT_TEXT,
                    )
                else:
                    emitted = np.asarray([last] + list(outcome.accepted), dtype=np.int64)
                    k_own, v_own = self.head.self_encode(emitted, positions)
                    hybrid.append_context(k_own, v_own, positions, SEGMENT_TEXT)
                    record.sim_time_ms += self.cost_model.draft_sync(keep)

                committed.extend(outcome.accepted)
                committed.append(outcome.next_token)
                if eos in committed:
                    committed = committed[: committed.index(eos) + 1]
                    break
                if len(committed) >= cfg.max_new_tokens:
                    committed = committed[: cfg.max_new_tokens]
                    break

        record.token_ids = committed
        record.wall_time_s = timer.elapsed
        record.text = self.tokenizer.decode(committed)
        return record
