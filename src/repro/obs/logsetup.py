"""Structured logging for the repro package.

Library modules get loggers via :func:`get_logger` and attach structured
context through ``extra={...}`` fields; nothing is printed until an
application (CLI, script, test) opts in with :func:`configure_logging`.
The formatter appends any non-standard record attributes as ``key=value``
pairs (or emits one JSON object per line with ``json_lines=True``), so

    logger.warning("draft fault", extra={"event": "draft_fault", "pos": 12})

renders as::

    2026-08-05 12:00:00 WARNING repro.core.engine: draft fault event=draft_fault pos=12
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "get_logger", "log_exception", "StructuredFormatter"]

ROOT_LOGGER_NAME = "repro"

#: Attributes present on every LogRecord — anything else came from extra=.
_RESERVED = set(vars(logging.LogRecord("", 0, "", 0, "", (), None))) | {
    "message", "asctime", "taskName",
}


def _extra_fields(record: logging.LogRecord) -> dict:
    return {k: v for k, v in record.__dict__.items() if k not in _RESERVED}


class StructuredFormatter(logging.Formatter):
    """Plain-text formatter that appends ``extra=`` fields as key=value."""

    def __init__(self, json_lines: bool = False) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s: %(message)s")
        self.json_lines = json_lines

    def format(self, record: logging.LogRecord) -> str:
        if self.json_lines:
            payload = {
                "ts": self.formatTime(record),
                "level": record.levelname,
                "logger": record.name,
                "message": record.getMessage(),
            }
            payload.update(_extra_fields(record))
            return json.dumps(payload, sort_keys=True, default=str)
        base = super().format(record)
        fields = _extra_fields(record)
        if fields:
            suffix = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            return f"{base} {suffix}"
        return base


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger (``repro.*``); silent until configured."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def log_exception(logger: logging.Logger, event: str, exc: BaseException,
                  **context: object) -> None:
    """Log a handled exception as one structured warning record.

    The canonical sink for broad ``except Exception`` handlers on the
    graceful-degradation path: the event name, exception type/text, and any
    caller context land as ``extra=`` fields, so faults stay greppable in
    both key=value and JSON-lines output.  The static-analysis rule
    ``except-discipline`` (see ``docs/static_analysis.md``) accepts a broad
    handler exactly when it routes through here (or an explicit
    ``extra=``-carrying log call / re-raise).
    """
    logger.warning(
        "%s: %s", event, exc,
        extra={"event": event, "error": str(exc),
               "error_type": type(exc).__name__, **context},
    )


def configure_logging(
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
    json_lines: bool = False,
    force: bool = True,
) -> logging.Logger:
    """Attach a structured handler to the ``repro`` logger tree.

    Logs go to ``stream`` (default stderr, keeping stdout free for
    CLI-facing tables).  ``force=True`` replaces handlers installed by a
    previous call, so reconfiguration is idempotent.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if force:
        for handler in [h for h in root.handlers if not isinstance(h, logging.NullHandler)]:
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(StructuredFormatter(json_lines=json_lines))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


# Library etiquette: a NullHandler keeps unconfigured fault/fallback logs
# from leaking to stderr via logging.lastResort (robustness tests inject
# hundreds of faults on purpose).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
