"""Per-phase breakdown of a trace file (the ``repro.obs summarize`` CLI).

Aggregates spans by name into a wall/simulated time table, derives
acceptance statistics from ``verify`` span attributes, reports how
much of each ``decode`` span is covered by its phase children (the
tiling guarantee the engine instrumentation maintains), and — when the
``decode`` spans carry the KV-arena attributes the engine stamps
(``bytes_copied`` / ``arena_grows`` / ``peak_cache_tokens``) — a memory
section showing the cache-copy story next to the wall table.

Serving traces add a resilience section: ``schedule`` spans stamped by
the continuous-batching scheduler carry ``breaker_state`` plus per-round
``n_retried`` / ``n_shed`` deltas, which aggregate into retry/shed totals
and a breaker-state round histogram (how many scheduler rounds ran
closed / half-open / open).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .metrics import exact_quantile
from .profile import collect_latencies, summarize_latencies
from .tracing import SpanRecord

__all__ = ["PhaseStats", "TraceSummary", "summarize_spans", "render_summary"]

#: Spans that tile the inside of a ``decode`` span (``ar_step`` is the
#: autoregressive baseline's loop body).
DECODE_PHASES = ("prefill", "draft", "verify", "fallback", "ar_step")


@dataclass
class PhaseStats:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    wall_ms: float = 0.0
    sim_ms: float = 0.0
    n_draft: int = 0
    n_accepted: int = 0
    has_accept: bool = False    # any span carried an n_accepted attribute
    #: raw per-span wall durations (ms) so the table can show percentiles
    durations_ms: List[float] = field(default_factory=list)

    @property
    def mean_wall_ms(self) -> float:
        return self.wall_ms / self.count if self.count else 0.0

    def quantile_ms(self, q: float) -> float:
        """Exact ``q``-quantile of this phase's per-span wall times."""
        if not self.durations_ms:
            return 0.0
        return exact_quantile(self.durations_ms, q)


@dataclass
class TraceSummary:
    """Everything the summarize CLI prints."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    n_spans: int = 0
    n_decodes: int = 0
    decode_wall_ms: float = 0.0
    decode_sim_ms: float = 0.0
    coverage: Optional[float] = None    # phase wall / decode wall
    bytes_copied: int = 0               # KV-arena bytes memcpy'd, summed
    arena_grows: int = 0                # KV-arena buffer reallocations, summed
    peak_cache_tokens: int = 0          # longest per-session KV seen
    has_memory: bool = False            # any decode span carried memory attrs
    n_retries: int = 0                  # transient-fault retries, summed
    n_shed: int = 0                     # requests shed under queue pressure
    breaker_rounds: Dict[str, int] = field(default_factory=dict)
    has_resilience: bool = False        # any schedule span carried resilience attrs
    #: TTFT/TPOT/E2E digests from ``request_latency`` spans (serving traces)
    latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: spans that each ran one target forward (prefill / verify / fallback /
    #: ar_step; a batched span is still one fused forward)
    n_target_forward_spans: int = 0
    #: tokens those forwards committed (verify: accepted + one bonus per
    #: batched request; others: one per batched request)
    tokens_emitted: int = 0
    #: per-request tokens-emitted samples from verify spans — solo spans
    #: contribute their exact block, batched spans their round mean once
    #: per request (span attributes carry only round totals)
    block_emitted: List[float] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> Optional[float]:
        verify = self.phases.get("verify")
        if verify is None or verify.n_draft == 0:
            return None
        return verify.n_accepted / verify.n_draft

    @property
    def block_efficiency(self) -> Optional[float]:
        verify = self.phases.get("verify")
        if verify is None or verify.count == 0:
            return None
        # Each verify block emits the accepted prefix plus one bonus token.
        return (verify.n_accepted + verify.count) / verify.count

    @property
    def accepted_per_forward(self) -> Optional[float]:
        """Committed tokens per target forward across all forward spans."""
        if self.n_target_forward_spans == 0:
            return None
        return self.tokens_emitted / self.n_target_forward_spans


def summarize_spans(spans: Sequence[SpanRecord]) -> TraceSummary:
    summary = TraceSummary(n_spans=len(spans))
    decode_ids = set()
    for span in spans:
        if span.name == "decode":
            decode_ids.add(span.span_id)
            summary.n_decodes += 1
            summary.decode_wall_ms += span.duration_ms
            summary.decode_sim_ms += span.sim_ms
            if "bytes_copied" in span.attrs:
                summary.has_memory = True
                summary.bytes_copied += int(span.attrs["bytes_copied"])
                summary.arena_grows += int(span.attrs.get("arena_grows", 0))
                summary.peak_cache_tokens = max(
                    summary.peak_cache_tokens,
                    int(span.attrs.get("peak_cache_tokens", 0)),
                )
        elif span.name == "schedule":
            attrs = span.attrs
            if any(k in attrs for k in ("breaker_state", "n_retried", "n_shed")):
                summary.has_resilience = True
                summary.n_retries += int(attrs.get("n_retried", 0))
                summary.n_shed += int(attrs.get("n_shed", 0))
                state = attrs.get("breaker_state")
                if state is not None:
                    summary.breaker_rounds[str(state)] = (
                        summary.breaker_rounds.get(str(state), 0) + 1
                    )
    phase_in_decode_ms = 0.0
    for span in spans:
        # ``request_latency`` spans are zero-duration latency markers, not
        # phases — they feed the latency digest below, not the wall table.
        if span.name in ("decode", "request_latency"):
            continue
        stats = summary.phases.setdefault(span.name, PhaseStats(span.name))
        stats.count += 1
        stats.wall_ms += span.duration_ms
        stats.durations_ms.append(span.duration_ms)
        stats.sim_ms += span.sim_ms
        stats.n_draft += int(span.attrs.get("n_draft", 0))
        if "n_accepted" in span.attrs:
            stats.n_accepted += int(span.attrs["n_accepted"])
            stats.has_accept = True
        if span.name in ("prefill", "verify", "fallback", "ar_step"):
            batch = max(1, int(span.attrs.get("batch", 1)))
            summary.n_target_forward_spans += 1
            if span.name == "verify":
                emitted = int(span.attrs.get("n_accepted", 0)) + batch
                summary.tokens_emitted += emitted
                summary.block_emitted.extend([emitted / batch] * batch)
            else:
                summary.tokens_emitted += batch
        if span.parent_id in decode_ids and span.name in DECODE_PHASES:
            phase_in_decode_ms += span.duration_ms
    if summary.decode_wall_ms > 0:
        summary.coverage = phase_in_decode_ms / summary.decode_wall_ms
    summary.latency_ms = summarize_latencies(collect_latencies(spans))
    return summary


def _format_bytes(n: int) -> str:
    """Human-scale byte count (KiB/MiB above 1 KiB)."""
    if n >= 1 << 20:
        return f"{n / (1 << 20):.2f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.2f} KiB"
    return f"{n} B"


def render_summary(summary: TraceSummary) -> str:
    """Aligned text table of the per-phase breakdown."""
    lines: List[str] = []
    header = (
        f"{'phase':>12} {'count':>7} {'wall ms':>10} {'mean ms':>9} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'sim ms':>10} {'accept':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    order = [p for p in DECODE_PHASES if p in summary.phases]
    order += sorted(set(summary.phases) - set(order))
    for name in order:
        stats = summary.phases[name]
        accept = (
            f"{stats.n_accepted / stats.n_draft:7.2f}"
            if stats.has_accept and stats.n_draft
            else f"{'-':>7}"
        )
        lines.append(
            f"{stats.name:>12} {stats.count:>7d} {stats.wall_ms:>10.2f} "
            f"{stats.mean_wall_ms:>9.3f} {stats.quantile_ms(0.5):>8.3f} "
            f"{stats.quantile_ms(0.95):>8.3f} {stats.quantile_ms(0.99):>8.3f} "
            f"{stats.sim_ms:>10.1f} {accept}"
        )
    lines.append("")
    lines.append(
        f"{summary.n_spans} spans, {summary.n_decodes} decode(s): "
        f"wall {summary.decode_wall_ms:.2f} ms, simulated {summary.decode_sim_ms:.1f} ms"
    )
    if summary.coverage is not None:
        lines.append(f"phase coverage of decode spans: {100.0 * summary.coverage:.2f}%")
    if summary.has_memory:
        lines.append(
            f"memory: {_format_bytes(summary.bytes_copied)} copied by KV arenas, "
            f"{summary.arena_grows} arena grow(s), "
            f"peak cache {summary.peak_cache_tokens} tokens"
        )
    if summary.has_resilience:
        parts = [f"{summary.n_retries} retr{'y' if summary.n_retries == 1 else 'ies'}",
                 f"{summary.n_shed} shed"]
        if summary.breaker_rounds:
            rounds = ", ".join(
                f"{state}={count}"
                for state, count in sorted(summary.breaker_rounds.items())
            )
            parts.append(f"breaker rounds: {rounds}")
        lines.append("resilience: " + "; ".join(parts))
    if summary.latency_ms:
        lines.append("request latency (server clock):")
        for metric in ("ttft_ms", "tpot_ms", "e2e_ms"):
            digest = summary.latency_ms.get(metric)
            if digest is None:
                continue
            lines.append(
                f"  {metric:>8}: n={int(digest['count']):<5d} "
                f"mean {digest['mean']:>9.1f}  p50 {digest['p50']:>9.1f}  "
                f"p95 {digest['p95']:>9.1f}  p99 {digest['p99']:>9.1f}"
            )
    alpha = summary.acceptance_rate
    tau = summary.block_efficiency
    if alpha is not None and tau is not None:
        lines.append(f"acceptance rate α = {alpha:.3f}, block efficiency τ = {tau:.3f}")
    apf = summary.accepted_per_forward
    if apf is not None:
        line = f"acceptance: {apf:.3f} accepted tokens/target-forward"
        if summary.block_emitted:
            line += (
                f"; block efficiency "
                f"p50 {exact_quantile(summary.block_emitted, 0.50):.2f} "
                f"p95 {exact_quantile(summary.block_emitted, 0.95):.2f}"
            )
        lines.append(line)
    return "\n".join(lines)
