"""repro.obs — tracing, metrics, and structured logging for the pipeline.

Three pillars (see ``docs/observability.md``):

* :mod:`~repro.obs.tracing` — span tracer instrumenting the prefill /
  draft / verify loop, the autoregressive baseline, training, and the
  experiment runner.  Disabled by default; near-zero overhead when off.
* :mod:`~repro.obs.metrics` — process-wide registry of counters, gauges,
  and histograms fed by the decoders and the tracer.
* :mod:`~repro.obs.exporters` + the ``python -m repro.obs summarize`` CLI
  — JSONL and Chrome-trace span export and per-phase breakdowns.

Quickstart::

    from repro import obs
    tracer = obs.enable_tracing()
    record = engine.decode(sample)          # spans collected
    obs.export_chrome(tracer, "trace.json") # load in ui.perfetto.dev
    obs.export_jsonl(tracer, "trace.jsonl")
    # then: python -m repro.obs summarize trace.jsonl
"""

from .exporters import export_chrome, export_jsonl, read_chrome, read_jsonl, read_trace
from .logsetup import StructuredFormatter, configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profile import (
    AttributionReport,
    PhaseAttribution,
    Profiler,
    build_attribution,
    collect_latencies,
    disable_profiling,
    enable_profiling,
    get_profiler,
    render_attribution,
    summarize_latencies,
)
from .flamegraph import export_collapsed, read_collapsed
from .summarize import PhaseStats, TraceSummary, render_summary, summarize_spans
from .tracing import (
    Span,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    # tracing
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    # exporters
    "export_jsonl",
    "export_chrome",
    "read_jsonl",
    "read_chrome",
    "read_trace",
    # summaries
    "PhaseStats",
    "TraceSummary",
    "summarize_spans",
    "render_summary",
    # profiling
    "Profiler",
    "get_profiler",
    "enable_profiling",
    "disable_profiling",
    "AttributionReport",
    "PhaseAttribution",
    "build_attribution",
    "render_attribution",
    "collect_latencies",
    "summarize_latencies",
    "export_collapsed",
    "read_collapsed",
    # logging
    "configure_logging",
    "get_logger",
    "StructuredFormatter",
]
