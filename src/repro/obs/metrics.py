"""Process-wide metrics registry: counters, gauges, histograms.

The decoders publish pipeline counters here (``decode.tokens_accepted_total``,
``decode.draft_faults_total``, ...) as they update their per-sample
:class:`~repro.decoding.metrics.DecodeRecord`, and the tracer feeds
per-phase latency histograms (``span_ms.<phase>``).  The registry is the
cross-sample aggregate view; per-sample pairing for the paper's omega/alpha
metrics still lives in :func:`repro.decoding.metrics.aggregate_metrics`,
whose totals must agree with the registry counters (tested in
``tests/obs/test_metrics_registry.py``).

All instruments are thread-safe and cheap enough to leave always-on.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "exact_quantile",
]

#: Default histogram bucket upper bounds (milliseconds-flavoured).
#: Log-spaced 1/2.5/5 ladder from 1 µs to 10 s so sub-millisecond arena
#: ops and multi-second decodes land in the same instrument without
#: losing resolution at either end.  Override per histogram at
#: registration for anything with known, tighter dynamic range.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Exact quantile with linear interpolation (numpy's default method).

    The reference the bucket-interpolated :meth:`Histogram.quantile` is
    tested against; also used directly where the raw samples are at hand
    (latency digests over per-request records).
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile must be in [0, 1], got {q}")
    if not values:
        raise ConfigError("quantile of an empty sample")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """Last-set value (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Cumulative-bucket histogram plus count/sum/min/max summary."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError(f"histogram {name} needs ascending bucket bounds")
        self.name = name
        self.description = description
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)   # +inf overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            idx = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            self._counts[idx] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def bucket_counts(self) -> List[int]:
        return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Walks the cumulative bucket counts to the bucket containing the
        target rank, then interpolates linearly inside it.  The first
        bucket's lower edge is the observed minimum (not zero), the
        overflow bucket reports the observed maximum, and the result is
        clamped to ``[min, max]`` — so the estimate degrades gracefully
        when a bucket ladder is coarse relative to the data.  Returns
        ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0 or self.min is None or self.max is None:
                return None
            rank = q * self.count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if i == len(self.bounds):
                        return self.max
                    lower = self.bounds[i - 1] if i > 0 else self.min
                    upper = self.bounds[i]
                    frac = (rank - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * frac
                    return min(max(estimate, self.min), self.max)
                cumulative += bucket_count
            return self.max

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": dict(zip([*map(str, self.bounds), "+inf"], self._counts)),
        }


class MetricsRegistry:
    """Named instruments, memoized on first use.

    ``registry.counter("decode.blocks_total")`` returns the same object on
    every call; asking for an existing name with a different instrument
    kind raises :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name, description, **kwargs)
            elif not isinstance(inst, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as {inst.kind}, not {cls.kind}"
                )
            return inst

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Histogram under ``name``; ``buckets`` overrides the default ladder.

        The override only applies when the histogram is first created.
        Re-registering an existing histogram with *different* explicit
        buckets raises :class:`~repro.errors.ConfigError` (silently
        keeping the old ladder would mis-bucket the caller's data);
        passing ``None`` (the default) always returns the existing one.
        """
        inst = self._get(Histogram, name, description,
                         buckets=DEFAULT_BUCKETS if buckets is None else buckets)
        if buckets is not None and inst.bounds != tuple(buckets):
            raise ConfigError(
                f"histogram {name!r} already registered with buckets "
                f"{inst.bounds}, conflicting override {tuple(buckets)}"
            )
        return inst

    # -- access ----------------------------------------------------------
    def get(self, name: str):
        """The instrument registered under ``name`` (None if absent)."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict dump of every instrument (JSON-serialisable)."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def reset(self) -> None:
        """Zero every instrument in place (registrations are kept)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.reset()


# ---------------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented components default to."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _GLOBAL
    previous, _GLOBAL = _GLOBAL, registry
    return previous
