"""Wall-clock attribution profiling: where real time goes, op by op.

The span tracer (:mod:`repro.obs.tracing`) tiles a decode into phases but
cannot say *what* inside a phase burned the wall clock — GEMM compute,
arena memcpy, or plain per-request Python overhead.  This module adds the
op level:

* :class:`Profiler` — a process-wide, off-by-default accumulator that
  instrumented hot paths feed: :meth:`Tensor.__matmul__
  <repro.nn.tensor.Tensor.__matmul__>` records every GEMM (calls, ms,
  FLOPs) and :class:`~repro.utils.arena.Arena` records every memcpy and
  view rebuild (calls, ms, bytes).  Each record is also accumulated onto
  the innermost open span (``gemm_ms`` / ``arena_copy_ms`` / ... span
  attributes), so exported traces carry the attribution and
  ``python -m repro.obs summarize --attribution`` can rebuild it offline.
* :func:`build_attribution` — folds a span tree into a four-bucket
  wall-time split ``{gemm, arena_copy, python_overhead, other}``:

  - **gemm** / **arena_copy**: measured op time (view rebuilds are
    counted with arena copies — both are storage-layer time);
  - **python_overhead**: container self-time — the part of ``decode`` /
    ``request`` / ``schedule`` spans not covered by their children, i.e.
    the N× per-request Python loop the batched round still pays;
  - **other**: phase-interior time that no op hook claimed (softmax,
    sampling, bookkeeping inside prefill/draft/verify/fallback);
  - **residual**: whatever the tree failed to cover (bounded by the
    span-tiling guarantee; the attribution tests pin it under 10%).

* Latency digests: :func:`collect_latencies` /
  :func:`summarize_latencies` aggregate the zero-duration
  ``request_latency`` spans the serving scheduler emits per retired
  request into TTFT / TPOT / E2E p50/p95/p99 tables.

Profiling is **off by default** and the disabled hook costs one attribute
check; it never touches RNG state, so profiled and unprofiled decodes
emit byte-identical tokens (``tests/obs/test_profile.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .metrics import exact_quantile
from .tracing import SpanRecord, get_tracer

__all__ = [
    "OpStats",
    "Profiler",
    "PROFILER",
    "get_profiler",
    "enable_profiling",
    "disable_profiling",
    "PhaseAttribution",
    "AttributionReport",
    "build_attribution",
    "render_attribution",
    "collect_latencies",
    "summarize_latencies",
    "LATENCY_METRICS",
]

#: Ops the hot-path hooks report (span attrs are ``<op>_ms`` etc.).
OP_GEMM = "gemm"
OP_ARENA_COPY = "arena_copy"
OP_ARENA_VIEW = "arena_view"

#: Spans that tile a decode from the inside (same set the summarizer uses;
#: duplicated here so ``summarize`` can import this module without a cycle).
PHASE_SPANS = ("prefill", "draft", "verify", "fallback", "ar_step")

#: Spans whose *self time* (wall not covered by children) is per-request /
#: per-round Python loop overhead rather than model compute.
CONTAINER_SPANS = ("decode", "request", "schedule")

#: Latency metrics carried by ``request_latency`` spans (simulated ms).
LATENCY_METRICS = ("ttft_ms", "tpot_ms", "e2e_ms")


@dataclass
class OpStats:
    """Accumulated accounting for one op kind."""

    calls: int = 0
    wall_ms: float = 0.0
    flops: float = 0.0
    bytes: int = 0

    def add(self, wall_ms: float, flops: float = 0.0, nbytes: int = 0) -> None:
        """Accumulate one op invocation."""
        self.calls += 1
        self.wall_ms += wall_ms
        self.flops += flops
        self.bytes += nbytes

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly dump."""
        return {"calls": self.calls, "wall_ms": self.wall_ms,
                "flops": self.flops, "bytes": self.bytes}


class Profiler:
    """Process-wide op-level accounting, off by default.

    Hooks call :meth:`record`; the profiler accumulates per-op totals
    *and* stamps the measured milliseconds onto the innermost open span
    (``<op>_ms`` / ``<op>_calls`` / ``<op>_flops`` / ``<op>_bytes``
    attributes) so exported traces carry the attribution.  Thread-safe;
    when ``enabled`` is False every hook reduces to one attribute check.
    """

    __slots__ = ("enabled", "tracer", "_lock", "_ops")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Optional explicit tracer; None means the process-global one.
        self.tracer = None
        self._lock = threading.Lock()
        self._ops: Dict[str, OpStats] = {}

    def record(self, op: str, wall_ms: float, flops: float = 0.0,
               nbytes: int = 0) -> None:
        """Account one op invocation (hooks must pre-check ``enabled``)."""
        with self._lock:
            stats = self._ops.get(op)
            if stats is None:
                stats = self._ops[op] = OpStats()
            stats.add(wall_ms, flops=flops, nbytes=nbytes)
        tracer = self.tracer if self.tracer is not None else get_tracer()
        span = tracer.current_span()
        span.add_attr(f"{op}_ms", wall_ms)
        span.add_attr(f"{op}_calls", 1)
        if flops:
            span.add_attr(f"{op}_flops", flops)
        if nbytes:
            span.add_attr(f"{op}_bytes", nbytes)

    def op(self, name: str) -> OpStats:
        """Accumulated stats for ``name`` (zeros if never recorded)."""
        with self._lock:
            return self._ops.get(name, OpStats())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-op accounting as a JSON-friendly dict."""
        with self._lock:
            return {op: stats.snapshot() for op, stats in sorted(self._ops.items())}

    def reset(self) -> None:
        """Drop all accumulated op accounting (enabled flag unchanged)."""
        with self._lock:
            self._ops.clear()


#: The singleton every hook checks.  A single object (rather than a
#: swappable global) keeps the disabled hot-path cost to one attribute
#: load; tests isolate themselves with ``PROFILER.reset()``.
PROFILER = Profiler(enabled=False)


def get_profiler() -> Profiler:
    """The process-wide profiler instrumented hot paths feed."""
    return PROFILER


def enable_profiling(tracer=None) -> Profiler:
    """Switch op-level profiling on (optionally stamping ``tracer``'s spans)."""
    PROFILER.tracer = tracer
    PROFILER.enabled = True
    return PROFILER


def disable_profiling() -> Profiler:
    """Switch op-level profiling off (accumulated stats are kept)."""
    PROFILER.enabled = False
    return PROFILER


# ---------------------------------------------------------------------------
# Attribution: span tree -> {gemm, arena_copy, python_overhead, other}.
# ---------------------------------------------------------------------------
def _op_ms(span: SpanRecord) -> Dict[str, float]:
    """Measured op milliseconds stamped on ``span`` (gemm / arena buckets)."""
    attrs = span.attrs
    arena = float(attrs.get("arena_copy_ms", 0.0)) + float(attrs.get("arena_view_ms", 0.0))
    return {"gemm": float(attrs.get("gemm_ms", 0.0)), "arena_copy": arena}


@dataclass
class PhaseAttribution:
    """One phase's wall time, split into measured ops and the remainder."""

    name: str
    count: int = 0
    wall_ms: float = 0.0
    gemm_ms: float = 0.0
    gemm_calls: int = 0
    gemm_flops: float = 0.0
    arena_ms: float = 0.0
    arena_bytes: int = 0
    other_ms: float = 0.0   #: wall - gemm - arena, clamped at zero per span


@dataclass
class AttributionReport:
    """The four-bucket wall-time split ``summarize --attribution`` prints."""

    total_ms: float = 0.0                 #: wall time of all root spans
    buckets: Dict[str, float] = field(default_factory=dict)
    phases: Dict[str, PhaseAttribution] = field(default_factory=dict)
    has_ops: bool = False                 #: any span carried op attributes

    @property
    def residual_ms(self) -> float:
        """Wall time the tree did not cover (tiling gaps)."""
        return self.total_ms - sum(self.buckets.values())

    @property
    def residual_fraction(self) -> float:
        """Residual as a fraction of total wall (0 when total is 0)."""
        if self.total_ms <= 0:
            return 0.0
        return self.residual_ms / self.total_ms

    @property
    def gemm_gflops_per_s(self) -> float:
        """Aggregate GEMM throughput implied by the measured op time."""
        total_flops = sum(p.gemm_flops for p in self.phases.values())
        total_ms = sum(p.gemm_ms for p in self.phases.values())
        if total_ms <= 0:
            return 0.0
        return (total_flops / 1e9) / (total_ms / 1e3)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (the machine-readable CLI output)."""
        return {
            "total_ms": self.total_ms,
            "buckets": dict(self.buckets),
            "residual_ms": self.residual_ms,
            "residual_fraction": self.residual_fraction,
            "gemm_gflops_per_s": self.gemm_gflops_per_s,
            "phases": {
                name: {
                    "count": p.count,
                    "wall_ms": p.wall_ms,
                    "gemm_ms": p.gemm_ms,
                    "gemm_calls": p.gemm_calls,
                    "gemm_flops": p.gemm_flops,
                    "arena_ms": p.arena_ms,
                    "arena_bytes": p.arena_bytes,
                    "other_ms": p.other_ms,
                }
                for name, p in sorted(self.phases.items())
            },
        }


def build_attribution(spans: Sequence[SpanRecord]) -> AttributionReport:
    """Fold a span tree into the four-bucket wall-time attribution.

    * phase spans (``prefill``/``draft``/``verify``/``fallback``/
      ``ar_step``) split their wall into measured ``gemm`` + ``arena``
      op time and ``other`` (the unclaimed interior);
    * container spans (``decode``/``request``/``schedule``) contribute
      their *self time* minus any ops recorded directly on them to
      ``python_overhead`` — the per-request / per-round loop cost;
    * the report's residual is whatever the roots' wall the tree failed
      to cover, bounded in practice by the span-tiling guarantee.
    """
    report = AttributionReport(
        buckets={"gemm": 0.0, "arena_copy": 0.0, "python_overhead": 0.0, "other": 0.0},
    )
    by_id = {s.span_id: s for s in spans}
    child_ms: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_ms[span.parent_id] = child_ms.get(span.parent_id, 0.0) + span.duration_ms
        else:
            report.total_ms += span.duration_ms

    for span in spans:
        ops = _op_ms(span)
        measured = ops["gemm"] + ops["arena_copy"]
        if measured > 0:
            report.has_ops = True
        if span.name in PHASE_SPANS:
            phase = report.phases.get(span.name)
            if phase is None:
                phase = report.phases[span.name] = PhaseAttribution(span.name)
            phase.count += 1
            phase.wall_ms += span.duration_ms
            phase.gemm_ms += ops["gemm"]
            phase.gemm_calls += int(span.attrs.get("gemm_calls", 0))
            phase.gemm_flops += float(span.attrs.get("gemm_flops", 0.0))
            phase.arena_ms += ops["arena_copy"]
            phase.arena_bytes += int(span.attrs.get("arena_copy_bytes", 0))
            phase.other_ms += max(0.0, span.duration_ms - measured)
            report.buckets["gemm"] += ops["gemm"]
            report.buckets["arena_copy"] += ops["arena_copy"]
            report.buckets["other"] += max(0.0, span.duration_ms - measured)
        elif span.name in CONTAINER_SPANS:
            self_ms = max(0.0, span.duration_ms - child_ms.get(span.span_id, 0.0))
            report.buckets["gemm"] += ops["gemm"]
            report.buckets["arena_copy"] += ops["arena_copy"]
            report.buckets["python_overhead"] += max(0.0, self_ms - measured)
    return report


def _format_bytes(n: int) -> str:
    """Human-scale byte count."""
    if n >= 1 << 20:
        return f"{n / (1 << 20):.2f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.2f} KiB"
    return f"{n} B"


def render_attribution(report: AttributionReport) -> str:
    """Aligned text rendering of an :class:`AttributionReport`."""
    lines: List[str] = []
    header = (
        f"{'phase':>10} {'count':>7} {'wall ms':>10} {'gemm ms':>9} "
        f"{'arena ms':>9} {'other ms':>9} {'gemm calls':>11} {'arena bytes':>12}"
    )
    lines.append("wall-clock attribution")
    lines.append(header)
    lines.append("-" * len(header))
    order = [p for p in PHASE_SPANS if p in report.phases]
    order += sorted(set(report.phases) - set(order))
    for name in order:
        p = report.phases[name]
        lines.append(
            f"{p.name:>10} {p.count:>7d} {p.wall_ms:>10.2f} {p.gemm_ms:>9.2f} "
            f"{p.arena_ms:>9.2f} {p.other_ms:>9.2f} {p.gemm_calls:>11d} "
            f"{_format_bytes(p.arena_bytes):>12}"
        )
    lines.append("")
    total = report.total_ms

    def share(ms: float) -> str:
        return f"{100.0 * ms / total:5.1f}%" if total > 0 else "    -"

    for bucket in ("gemm", "arena_copy", "python_overhead", "other"):
        ms = report.buckets.get(bucket, 0.0)
        lines.append(f"{bucket:>16}: {ms:>10.2f} ms  {share(ms)}")
    lines.append(f"{'residual':>16}: {report.residual_ms:>10.2f} ms  "
                 f"{share(report.residual_ms)}")
    lines.append(f"{'total wall':>16}: {total:>10.2f} ms")
    if report.gemm_gflops_per_s > 0:
        lines.append(f"{'gemm throughput':>16}: {report.gemm_gflops_per_s:>10.2f} GFLOP/s")
    if not report.has_ops:
        lines.append("(no op-level attributes found — was profiling enabled "
                     "during the traced run?)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Latency digests from request_latency spans.
# ---------------------------------------------------------------------------
def collect_latencies(spans: Sequence[SpanRecord]) -> Dict[str, List[float]]:
    """Per-metric latency samples from ``request_latency`` spans."""
    out: Dict[str, List[float]] = {}
    for span in spans:
        if span.name != "request_latency":
            continue
        for metric in LATENCY_METRICS:
            value = span.attrs.get(metric)
            if value is not None:
                out.setdefault(metric, []).append(float(value))
    return out


def summarize_latencies(
    latencies: Dict[str, Sequence[float]],
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> Dict[str, Dict[str, float]]:
    """count / mean / pXX digest per latency metric (exact quantiles)."""
    digest: Dict[str, Dict[str, float]] = {}
    for metric, values in latencies.items():
        values = [float(v) for v in values]
        if not values:
            continue
        row: Dict[str, float] = {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
        }
        for q in quantiles:
            row[f"p{int(round(q * 100))}"] = exact_quantile(values, q)
        digest[metric] = row
    return digest


def _self_check_phase_sets() -> None:
    """Keep the duplicated phase list in sync with the summarizer's."""
    from .summarize import DECODE_PHASES

    if tuple(DECODE_PHASES) != tuple(PHASE_SPANS):
        raise AssertionError(
            f"PHASE_SPANS {PHASE_SPANS} out of sync with "
            f"summarize.DECODE_PHASES {DECODE_PHASES}"
        )
