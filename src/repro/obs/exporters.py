"""Trace exporters: JSONL span logs and Chrome trace-event files.

Two interchangeable on-disk formats:

* **JSONL** — one span per line, lossless round-trip of
  :class:`~repro.obs.tracing.SpanRecord` (ids, parentage, attributes).
* **Chrome trace events** — the ``{"traceEvents": [...]}`` JSON consumed
  by ``chrome://tracing`` and https://ui.perfetto.dev; complete-event
  (``"ph": "X"``) entries with microsecond timestamps.  Span/parent ids
  are carried in ``args`` so the file still round-trips through
  :func:`read_trace`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import ConfigError
from .tracing import SpanRecord, Tracer

__all__ = [
    "export_jsonl",
    "export_chrome",
    "read_jsonl",
    "read_chrome",
    "read_trace",
]

PathLike = Union[str, Path]


def _spans(source: Union[Tracer, Iterable[SpanRecord]]) -> List[SpanRecord]:
    if isinstance(source, Tracer):
        return source.spans
    return list(source)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def export_jsonl(source: Union[Tracer, Iterable[SpanRecord]], path: PathLike) -> Path:
    """Write one JSON object per span; returns the output path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for span in _spans(source):
            fh.write(json.dumps({
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "thread_id": span.thread_id,
                "thread_name": span.thread_name,
                "attrs": span.attrs,
            }, sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path: PathLike) -> List[SpanRecord]:
    spans: List[SpanRecord] = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}:{lineno}: invalid trace line: {exc}") from exc
        spans.append(SpanRecord(
            name=obj["name"],
            span_id=int(obj["span_id"]),
            parent_id=None if obj.get("parent_id") is None else int(obj["parent_id"]),
            start_s=float(obj["start_s"]),
            end_s=float(obj["end_s"]),
            thread_id=int(obj.get("thread_id", 0)),
            thread_name=str(obj.get("thread_name", "")),
            attrs=dict(obj.get("attrs", {})),
        ))
    return spans


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------
def export_chrome(source: Union[Tracer, Iterable[SpanRecord]], path: PathLike,
                  pid: Optional[int] = None) -> Path:
    """Write a ``chrome://tracing`` / Perfetto-loadable trace file."""
    spans = _spans(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    pid = os.getpid() if pid is None else pid
    origin = min((s.start_s for s in spans), default=0.0)
    events = []
    for span in spans:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start_s - origin) * 1e6,     # microseconds
            "dur": span.duration_s * 1e6,
            "pid": pid,
            "tid": span.thread_id,
            "args": args,
        })
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "origin_s": origin},
    }
    path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    return path


def read_chrome(path: PathLike) -> List[SpanRecord]:
    """Load complete-events from a Chrome trace file back into spans."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, list):       # bare event-array variant
        events, origin = payload, 0.0
    else:
        events = payload.get("traceEvents", [])
        origin = float(payload.get("otherData", {}).get("origin_s", 0.0))
    spans: List[SpanRecord] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = int(args.pop("span_id", len(spans) + 1))
        parent_id = args.pop("parent_id", None)
        start = origin + float(event["ts"]) / 1e6
        spans.append(SpanRecord(
            name=event["name"],
            span_id=span_id,
            parent_id=None if parent_id is None else int(parent_id),
            start_s=start,
            end_s=start + float(event.get("dur", 0.0)) / 1e6,
            thread_id=int(event.get("tid", 0)),
            thread_name=str(event.get("tname", "")),
            attrs=args,
        ))
    return spans


def read_trace(path: PathLike) -> List[SpanRecord]:
    """Load either format, sniffing JSONL vs Chrome JSON from the content."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file not found: {path}")
    head = path.read_text(encoding="utf-8").lstrip()[:1]
    if head == "[":
        return read_chrome(path)
    if head == "{":
        # Either a Chrome {"traceEvents": ...} object or a single JSONL line.
        first_line = path.read_text(encoding="utf-8").lstrip().splitlines()[0]
        try:
            obj = json.loads(first_line)
        except json.JSONDecodeError:
            return read_chrome(path)
        return read_jsonl(path) if "span_id" in obj else read_chrome(path)
    raise ConfigError(f"{path}: not a JSONL or Chrome trace file")
