"""Collapsed-stack flamegraph export from the span tree.

Folds a recorded trace into the ``flamegraph.pl`` / speedscope collapsed
format — one line per unique span stack::

    decode;draft 1433
    decode;verify 2871
    decode 96

The number is the stack's **self time** in integer microseconds (the
wall time of spans on that stack *not* covered by their children), so
frame widths in a rendered flamegraph sum exactly to traced wall time
and interior frames shrink to what they personally cost.  Load the file
with https://www.speedscope.app ("import"), ``flamegraph.pl``, or
``inferno-flamegraph``.

The format is lossy by design (no span ids, attrs, or timestamps — use
the JSONL exporter for lossless round-trips), but :func:`read_collapsed`
parses the files back so tests can verify the fold and tooling can diff
two profiles.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..errors import ConfigError
from .tracing import SpanRecord, Tracer

__all__ = ["fold_spans", "export_collapsed", "read_collapsed"]

PathLike = Union[str, Path]

#: Frame separator of the collapsed format; span names must avoid it.
_SEP = ";"


def _spans(source: Union[Tracer, Iterable[SpanRecord]]) -> List[SpanRecord]:
    if isinstance(source, Tracer):
        return source.spans
    return list(source)


def fold_spans(source: Union[Tracer, Iterable[SpanRecord]]) -> Dict[str, int]:
    """Collapse spans into ``{"root;child;leaf": self_time_us}``.

    Self time is the span's wall minus its direct children's wall,
    clamped at zero (clock jitter can make children nominally overrun
    their parent), rounded to integer microseconds.  Stacks whose self
    time rounds to zero are dropped — flamegraph renderers treat zero
    samples as absent anyway.  Spans with a parent missing from the
    trace (e.g. a drained buffer) root their own stack.
    """
    spans = _spans(source)
    by_id = {s.span_id: s for s in spans}
    child_s: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_s[span.parent_id] = child_s.get(span.parent_id, 0.0) + span.duration_s

    folded: Dict[str, int] = {}
    stack_cache: Dict[int, str] = {}

    def stack_of(span: SpanRecord) -> str:
        cached = stack_cache.get(span.span_id)
        if cached is not None:
            return cached
        name = span.name.replace(_SEP, ":")
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        stack = name if parent is None else f"{stack_of(parent)}{_SEP}{name}"
        stack_cache[span.span_id] = stack
        return stack

    for span in spans:
        self_us = round(1e6 * max(0.0, span.duration_s - child_s.get(span.span_id, 0.0)))
        if self_us <= 0:
            continue
        stack = stack_of(span)
        folded[stack] = folded.get(stack, 0) + self_us
    return folded


def export_collapsed(source: Union[Tracer, Iterable[SpanRecord]],
                     path: PathLike) -> Path:
    """Write the collapsed-stack file (sorted by stack); returns the path."""
    folded = fold_spans(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for stack in sorted(folded):
            fh.write(f"{stack} {folded[stack]}\n")
    return path


def read_collapsed(path: PathLike) -> Dict[str, int]:
    """Parse a collapsed-stack file back into ``{stack: samples}``."""
    folded: Dict[str, int] = {}
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), 1
    ):
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.lstrip("-").isdigit():
            raise ConfigError(f"{path}:{lineno}: not a collapsed-stack line: {line!r}")
        folded[stack] = folded.get(stack, 0) + int(count)
    return folded
