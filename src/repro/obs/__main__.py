"""Observability CLI.

Usage:
    python -m repro.obs summarize TRACE [--json] [--attribution]
    python -m repro.obs flamegraph TRACE OUT

``TRACE`` may be a JSONL span log or a Chrome trace-event file (the format
is sniffed from the content).  ``summarize`` prints the per-phase
breakdown table; ``--attribution`` adds the op-level wall-clock split
({gemm, arena_copy, python_overhead, other}) from spans recorded with
profiling enabled.  ``flamegraph`` folds the span tree into a
collapsed-stack file loadable by speedscope / ``flamegraph.pl``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .exporters import read_trace
from .flamegraph import export_collapsed
from .logsetup import configure_logging
from .metrics import exact_quantile
from .profile import build_attribution, render_attribution
from .summarize import render_summary, summarize_spans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="per-phase breakdown of a trace file")
    p_sum.add_argument("trace", help="JSONL or Chrome trace file")
    p_sum.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_sum.add_argument("--attribution", action="store_true",
                       help="add the op-level wall-clock attribution report")
    p_flame = sub.add_parser(
        "flamegraph", help="fold a trace into a collapsed-stack flamegraph file"
    )
    p_flame.add_argument("trace", help="JSONL or Chrome trace file")
    p_flame.add_argument("out", help="output path for the collapsed-stack file")
    args = parser.parse_args(argv)

    configure_logging()
    spans = read_trace(args.trace)
    if args.command == "flamegraph":
        out = export_collapsed(spans, args.out)
        print(f"wrote {out}")
        return 0
    summary = summarize_spans(spans)
    attribution = build_attribution(spans) if args.attribution else None
    if args.json:
        payload = {
            "n_spans": summary.n_spans,
            "n_decodes": summary.n_decodes,
            "decode_wall_ms": summary.decode_wall_ms,
            "decode_sim_ms": summary.decode_sim_ms,
            "coverage": summary.coverage,
            "acceptance_rate": summary.acceptance_rate,
            "block_efficiency": summary.block_efficiency,
            "acceptance": {
                "accepted_per_target_forward": summary.accepted_per_forward,
                "n_target_forwards": summary.n_target_forward_spans,
                "tokens_emitted": summary.tokens_emitted,
                "block_efficiency_p50": exact_quantile(summary.block_emitted, 0.50)
                if summary.block_emitted else None,
                "block_efficiency_p95": exact_quantile(summary.block_emitted, 0.95)
                if summary.block_emitted else None,
            } if summary.accepted_per_forward is not None else None,
            "memory": {
                "bytes_copied": summary.bytes_copied,
                "arena_grows": summary.arena_grows,
                "peak_cache_tokens": summary.peak_cache_tokens,
            } if summary.has_memory else None,
            "resilience": {
                "n_retries": summary.n_retries,
                "n_shed": summary.n_shed,
                "breaker_rounds": summary.breaker_rounds,
            } if summary.has_resilience else None,
            "phases": {
                name: {
                    "count": s.count,
                    "wall_ms": s.wall_ms,
                    "sim_ms": s.sim_ms,
                    "n_draft": s.n_draft,
                    "n_accepted": s.n_accepted,
                    "p50_ms": s.quantile_ms(0.5),
                    "p95_ms": s.quantile_ms(0.95),
                    "p99_ms": s.quantile_ms(0.99),
                }
                for name, s in summary.phases.items()
            },
            "latency_ms": summary.latency_ms or None,
        }
        if attribution is not None:
            payload["attribution"] = attribution.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
        if attribution is not None:
            print()
            print(render_attribution(attribution))
    return 0


if __name__ == "__main__":
    sys.exit(main())
