"""Observability CLI.

Usage:
    python -m repro.obs summarize TRACE [--json]

``TRACE`` may be a JSONL span log or a Chrome trace-event file (the format
is sniffed from the content).  The breakdown table goes to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys

from .exporters import read_trace
from .logsetup import configure_logging
from .summarize import render_summary, summarize_spans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="per-phase breakdown of a trace file")
    p_sum.add_argument("trace", help="JSONL or Chrome trace file")
    p_sum.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    configure_logging()
    spans = read_trace(args.trace)
    summary = summarize_spans(spans)
    if args.json:
        payload = {
            "n_spans": summary.n_spans,
            "n_decodes": summary.n_decodes,
            "decode_wall_ms": summary.decode_wall_ms,
            "decode_sim_ms": summary.decode_sim_ms,
            "coverage": summary.coverage,
            "acceptance_rate": summary.acceptance_rate,
            "block_efficiency": summary.block_efficiency,
            "memory": {
                "bytes_copied": summary.bytes_copied,
                "arena_grows": summary.arena_grows,
                "peak_cache_tokens": summary.peak_cache_tokens,
            } if summary.has_memory else None,
            "resilience": {
                "n_retries": summary.n_retries,
                "n_shed": summary.n_shed,
                "breaker_rounds": summary.breaker_rounds,
            } if summary.has_resilience else None,
            "phases": {
                name: {
                    "count": s.count,
                    "wall_ms": s.wall_ms,
                    "sim_ms": s.sim_ms,
                    "n_draft": s.n_draft,
                    "n_accepted": s.n_accepted,
                }
                for name, s in summary.phases.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
