"""Perf-regression gate: compare benchmark results to a checked-in baseline.

``scripts/perf_gate.py`` (the CLI over this module) guards the perf
trajectory the way ``repro.analysis`` guards invariants: a checked-in
baseline (``results/perf_baseline.json``) records the blessed value of
every gated metric, and updates require a real justification — empty or
``TODO`` justifications are rejected, and the full update history
(timestamp, git SHA, reason) accumulates inside the baseline file so
``git log`` plus the file itself reconstruct every intentional shift.

The gate reads the schema-stamped envelopes the benchmarks save into
``results/`` (see :mod:`repro.eval.reporting`; parsed standalone here so
``repro.obs`` stays a foundation module with no eval dependency):

* metrics are gated **per direction** (``higher`` is better for
  throughput/speedup, ``lower`` for latency/ms) with a per-metric
  relative tolerance;
* deterministic simulated-clock metrics get tight tolerances (the sim
  clock is exactly reproducible for a given zoo profile), wall-clock
  metrics get generous ones (CI machines are noisy) — both loud enough
  to catch an order-of-magnitude regression;
* a source whose recorded benchmark config does not match the
  baseline's is *skipped*, not failed: runs at different token budgets
  or zoo profiles are incomparable, and silently comparing them would
  gate on noise.

Exit contract of the CLI: 0 when nothing regressed beyond tolerance,
1 on regression (or a missing results file), always 0 in
``--report-only`` mode.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ConfigError

__all__ = [
    "MetricSpec",
    "GateEntry",
    "GateReport",
    "DEFAULT_SPECS",
    "BASELINE_SCHEMA",
    "build_baseline",
    "load_baseline",
    "compare",
    "render_gate_report",
    "validate_justification",
]

PathLike = Union[str, Path]

#: Version of the baseline file layout.
BASELINE_SCHEMA = 1

STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"
STATUS_MISSING = "missing"
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is gated: which way is better, how much slack."""

    metric: str
    direction: str        #: ``higher`` or ``lower`` is better
    rel_tol: float        #: relative tolerance before a change regresses

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ConfigError(
                f"metric {self.metric}: direction must be higher/lower, "
                f"got {self.direction!r}"
            )
        if not 0.0 <= self.rel_tol < 10.0:
            raise ConfigError(
                f"metric {self.metric}: rel_tol {self.rel_tol} out of range"
            )


#: What each benchmark source gates by default.  Simulated-clock metrics
#: are deterministic per zoo profile — tight 2% tolerance.  Wall-clock
#: metrics move with the CI machine — 60% slack still catches the
#: pathological regressions (an accidental O(T^2) reintroduction shifts
#: these by integer factors).
DEFAULT_SPECS: Dict[str, Tuple[MetricSpec, ...]] = {
    "serving": (
        MetricSpec("speedup", "higher", 0.02),
        MetricSpec("tok_per_s", "higher", 0.02),
        MetricSpec("sim_ms", "lower", 0.02),
        MetricSpec("ttft_ms_p50", "lower", 0.02),
        MetricSpec("e2e_ms_p95", "lower", 0.02),
        MetricSpec("wall_tok_per_s", "higher", 0.60),
    ),
    "kv_arena": (
        MetricSpec("speedup", "higher", 0.60),
        MetricSpec("arena_ms", "lower", 0.60),
    ),
    "tree": (
        MetricSpec("apf", "higher", 0.02),
        MetricSpec("sim_ms", "lower", 0.02),
        MetricSpec("tok_per_s", "higher", 0.02),
    ),
}


@dataclass(frozen=True)
class GateEntry:
    """One (source, row, metric) comparison outcome."""

    source: str
    row: str
    metric: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    rel_tol: float = 0.0
    direction: str = "higher"
    note: str = ""

    @property
    def rel_change(self) -> Optional[float]:
        """Signed relative change, positive = metric went up."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass
class GateReport:
    """Every comparison the gate made, plus the verdict."""

    entries: List[GateEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[GateEntry]:
        return [e for e in self.entries if e.status == STATUS_REGRESSED]

    @property
    def missing(self) -> List[GateEntry]:
        return [e for e in self.entries if e.status == STATUS_MISSING]

    @property
    def passed(self) -> bool:
        """True when no gated metric regressed and nothing was missing."""
        return not self.regressions and not self.missing

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "n_regressions": len(self.regressions),
            "n_missing": len(self.missing),
            "entries": [
                {
                    "source": e.source,
                    "row": e.row,
                    "metric": e.metric,
                    "status": e.status,
                    "baseline": e.baseline,
                    "current": e.current,
                    "rel_change": e.rel_change,
                    "rel_tol": e.rel_tol,
                    "direction": e.direction,
                    "note": e.note,
                }
                for e in self.entries
            ],
        }


def validate_justification(justification: str) -> str:
    """Reject empty / placeholder justifications (mirrors the lint baseline).

    A baseline update is a statement that the perf shift is intentional;
    ``TODO``-style text defers that statement, which defeats the gate.
    """
    text = (justification or "").strip()
    if len(text) < 10:
        raise ConfigError(
            "baseline update needs a real justification (>= 10 characters) "
            "explaining why the perf shift is intentional"
        )
    lowered = text.lower()
    if lowered.startswith(("todo", "fixme", "xxx", "tbd")):
        raise ConfigError(
            f"placeholder justification rejected: {text!r} — state why the "
            "new numbers are correct, not that you will later"
        )
    return text


# ---------------------------------------------------------------------------
# Results-envelope access (standalone: repro.obs must not import repro.eval).
# ---------------------------------------------------------------------------
def _load_rows(path: Path) -> Tuple[Dict[str, Dict[str, float]], Dict[str, object]]:
    """``(flat rows, meta)`` from a results file (envelope or legacy flat)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(payload, dict) and "schema" in payload and "results" in payload:
        return dict(payload["results"]), dict(payload.get("meta", {}))
    return dict(payload), {}


def build_baseline(
    results_dir: PathLike,
    justification: str,
    specs: Optional[Mapping[str, Tuple[MetricSpec, ...]]] = None,
    previous: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot the current ``results/`` files into a baseline document.

    Carries forward the update history from ``previous`` (if given) and
    appends this update's justification; missing source files are an
    error — a baseline must bless every gated source.
    """
    text = validate_justification(justification)
    specs = dict(DEFAULT_SPECS if specs is None else specs)
    results_dir = Path(results_dir)
    sources: Dict[str, object] = {}
    for source, metric_specs in sorted(specs.items()):
        path = results_dir / f"{source}.json"
        if not path.exists():
            raise ConfigError(
                f"cannot build baseline: {path} missing — run the "
                f"{source} benchmark first"
            )
        rows, row_meta = _load_rows(path)
        gated_rows: Dict[str, Dict[str, Dict[str, object]]] = {}
        for row_key, metrics in sorted(rows.items()):
            gated: Dict[str, Dict[str, object]] = {}
            for spec in metric_specs:
                if spec.metric in metrics:
                    gated[spec.metric] = {
                        "value": float(metrics[spec.metric]),
                        "direction": spec.direction,
                        "rel_tol": spec.rel_tol,
                    }
            if gated:
                gated_rows[row_key] = gated
        sources[source] = {
            "config": dict(row_meta.get("config", {})),
            "rows": gated_rows,
        }
    history = list(previous.get("updated", [])) if previous else []
    entry: Dict[str, object] = {"justification": text}
    if meta:
        entry.update({k: meta[k] for k in ("created_utc", "git_sha") if k in meta})
    history.append(entry)
    return {"schema": BASELINE_SCHEMA, "updated": history, "sources": sources}


def load_baseline(path: PathLike) -> Dict[str, object]:
    """Load and sanity-check a baseline document."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(
            f"perf baseline not found: {path} — create it with "
            "scripts/perf_gate.py update --justification '...'"
        )
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA or "sources" not in payload:
        raise ConfigError(f"{path}: not a schema-{BASELINE_SCHEMA} perf baseline")
    return payload


def compare(results_dir: PathLike, baseline: Mapping[str, object]) -> GateReport:
    """Gate the current ``results/`` files against ``baseline``."""
    report = GateReport()
    results_dir = Path(results_dir)
    for source, source_doc in sorted(baseline["sources"].items()):  # type: ignore[union-attr]
        path = results_dir / f"{source}.json"
        if not path.exists():
            report.entries.append(GateEntry(
                source=source, row="*", metric="*", status=STATUS_MISSING,
                note=f"{path} not found — benchmark did not run",
            ))
            continue
        rows, meta = _load_rows(path)
        base_config = dict(source_doc.get("config", {}))
        run_config = dict(meta.get("config", {}))
        if base_config and run_config and base_config != run_config:
            report.entries.append(GateEntry(
                source=source, row="*", metric="*", status=STATUS_SKIPPED,
                note=(f"config mismatch (baseline {base_config} vs "
                      f"run {run_config}) — runs not comparable"),
            ))
            continue
        for row_key, gated in sorted(source_doc.get("rows", {}).items()):
            current_row = rows.get(row_key)
            for metric, spec in sorted(gated.items()):
                base_value = float(spec["value"])
                direction = str(spec["direction"])
                rel_tol = float(spec["rel_tol"])
                if current_row is None or metric not in current_row:
                    report.entries.append(GateEntry(
                        source=source, row=row_key, metric=metric,
                        status=STATUS_MISSING, baseline=base_value,
                        rel_tol=rel_tol, direction=direction,
                        note="metric absent from current results",
                    ))
                    continue
                current = float(current_row[metric])
                scale = abs(base_value) if base_value != 0 else 1.0
                delta = (current - base_value) / scale
                worse = -delta if direction == "higher" else delta
                if worse > rel_tol:
                    status = STATUS_REGRESSED
                elif worse < -rel_tol:
                    status = STATUS_IMPROVED
                else:
                    status = STATUS_OK
                report.entries.append(GateEntry(
                    source=source, row=row_key, metric=metric, status=status,
                    baseline=base_value, current=current,
                    rel_tol=rel_tol, direction=direction,
                ))
    return report


def render_gate_report(report: GateReport, verbose: bool = False) -> str:
    """Aligned text rendering; non-ok entries always shown."""
    lines: List[str] = []
    header = (
        f"{'source':>9} {'row':>22} {'metric':>16} {'baseline':>11} "
        f"{'current':>11} {'change':>8} {'tol':>6}  status"
    )
    lines.append("perf gate report")
    lines.append(header)
    lines.append("-" * len(header))
    shown = 0
    for entry in report.entries:
        if entry.status == STATUS_OK and not verbose:
            continue
        shown += 1
        change = entry.rel_change
        lines.append(
            f"{entry.source:>9} {entry.row:>22} {entry.metric:>16} "
            f"{'-' if entry.baseline is None else format(entry.baseline, '11.2f')} "
            f"{'-' if entry.current is None else format(entry.current, '11.2f')} "
            f"{'-' if change is None else format(100 * change, '+7.1f') + '%'} "
            f"{100 * entry.rel_tol:>5.0f}%  {entry.status}"
            + (f"  ({entry.note})" if entry.note else "")
        )
    if shown == 0:
        lines.append("(all gated metrics within tolerance)")
    n_ok = sum(1 for e in report.entries if e.status == STATUS_OK)
    lines.append("")
    lines.append(
        f"{len(report.entries)} comparisons: {n_ok} ok, "
        f"{len(report.regressions)} regressed, "
        f"{sum(1 for e in report.entries if e.status == STATUS_IMPROVED)} improved, "
        f"{len(report.missing)} missing, "
        f"{sum(1 for e in report.entries if e.status == STATUS_SKIPPED)} skipped"
    )
    lines.append(f"verdict: {'PASS' if report.passed else 'FAIL'}")
    return "\n".join(lines)
