"""Span-based tracing for the prefill / draft / verify pipeline.

A :class:`Tracer` hands out context-manager :class:`Span` objects that nest
via a thread-local stack, so the decode loop can be tiled into phases::

    with tracer.span("decode", decoder="ours"):
        with tracer.span("prefill"):
            ...
        with tracer.span("draft", gamma=3) as sp:
            sp.add_sim_ms(cost)          # simulated charge, side by side
            ...

Design constraints, in priority order:

* **Near-zero overhead when disabled** — ``tracer.span(...)`` returns a
  shared no-op singleton without allocating, so instrumented code paths
  cost one attribute check per span when tracing is off.  Tracing never
  touches RNG state, so traced and untraced decodes emit identical tokens.
* **Thread-safe** — each thread keeps its own span stack; finished spans
  are appended under a lock.
* **Dual clocks** — every span measures real wall time
  (``time.perf_counter``) and accumulates *simulated* milliseconds charged
  by the cost model via :meth:`Span.add_sim_ms`, so reports can show both
  side by side per phase.

Finished spans optionally feed per-phase latency histograms in a
:class:`~repro.obs.metrics.MetricsRegistry` (``span_ms.<name>``).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as stored in memory and written by exporters."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float              # time.perf_counter seconds
    end_s: float
    thread_id: int
    thread_name: str
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return 1000.0 * (self.end_s - self.start_s)

    @property
    def sim_ms(self) -> float:
        """Simulated milliseconds charged inside this span (0 if none)."""
        return float(self.attrs.get("sim_ms", 0.0))


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set_attr(self, key: str, value: object) -> None:
        pass

    def add_attr(self, key: str, delta: float) -> None:
        pass

    def add_sim_ms(self, ms: float) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live span; use as a context manager (see module docstring).

    Lifecycle bookkeeping is deliberately placed *inside* the timed window
    (``start_s`` is stamped first on enter, ``end_s`` last on exit, and the
    finished-list append happens in between), so sibling phase spans tile
    their parent with sub-microsecond gaps even on tiny models — the
    property the per-phase wall-time breakdown relies on.
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "start_s", "end_s", "thread_id", "thread_name")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.thread_id = 0
        self.thread_name = ""

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def add_attr(self, key: str, delta: float) -> None:
        """Accumulate a numeric attribute (used by op-level profiling hooks)."""
        self.attrs[key] = float(self.attrs.get(key, 0.0)) + float(delta)

    def add_sim_ms(self, ms: float) -> None:
        """Attribute a simulated-clock charge (milliseconds) to this span."""
        self.attrs["sim_ms"] = float(self.attrs.get("sim_ms", 0.0)) + float(ms)

    def record(self) -> SpanRecord:
        """Immutable snapshot of this (finished) span."""
        return SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_s=self.start_s,
            end_s=self.end_s,
            thread_id=self.thread_id,
            thread_name=self.thread_name,
            attrs=dict(self.attrs),
        )

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._pop(self)
        self.end_s = time.perf_counter()
        registry = self._tracer.registry
        if registry is not None:
            registry.histogram(f"span_ms.{self.name}").observe(
                1000.0 * (self.end_s - self.start_s)
            )


class Tracer:
    """Collects spans in memory; export via :mod:`repro.obs.exporters`."""

    def __init__(self, enabled: bool = True, registry=None) -> None:
        self.enabled = enabled
        self.registry = registry   # optional MetricsRegistry for span_ms.* histograms
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- instrumentation entry point ------------------------------------
    def span(self, name: str, **attrs):
        """Open a span; returns the no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack()[-1].span_id if self._stack() else None
        return Span(self, name, next(self._ids), parent, attrs)

    def current_span(self):
        """Innermost open span on this thread (``NULL_SPAN`` if none)."""
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    # -- span lifecycle (called by Span) --------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        # Runs inside the span's timed window (before end_s is stamped),
        # so this bookkeeping never shows up as a gap between siblings.
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:          # tolerate out-of-order exits
            stack.remove(span)
        span.thread_id = threading.get_ident()
        span.thread_name = threading.current_thread().name
        with self._lock:
            self._finished.append(span)

    # -- access ----------------------------------------------------------
    @property
    def spans(self) -> List[SpanRecord]:
        """Snapshot of finished spans, in completion order."""
        with self._lock:
            finished = list(self._finished)
        return [s.record() for s in finished]

    def drain(self) -> List[SpanRecord]:
        """Return finished spans and clear the buffer."""
        with self._lock:
            out = self._finished
            self._finished = []
        return [s.record() for s in out]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


# ---------------------------------------------------------------------------
# Process-wide default tracer.  Disabled out of the box: uninstrumented
# behaviour (and overhead) is the default, opt in via enable_tracing().
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented component defaults to."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _GLOBAL
    previous, _GLOBAL = _GLOBAL, tracer
    return previous


def enable_tracing(registry=None) -> Tracer:
    """Switch the global tracer on (optionally feeding ``registry``)."""
    if registry is None:
        from .metrics import get_registry

        registry = get_registry()
    _GLOBAL.enabled = True
    _GLOBAL.registry = registry
    return _GLOBAL


def disable_tracing() -> Tracer:
    _GLOBAL.enabled = False
    return _GLOBAL
